package serve

// Crash-point and disk-fault tests for the snapshot store. The crash tests
// re-exec this test binary with fault.CrashEnv set; the child arms the named
// crash point, runs one store.put, and dies with fault.CrashExitCode at the
// armed instant — a real process death between two syscalls, not a mock.
// The parent then reopens the directory the way a restarted server would
// and asserts what survived.

import (
	"errors"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/fault"
	"repro/internal/models"
	"repro/internal/nn"
)

const (
	crashDirEnv     = "CRISP_SNAPSHOT_CRASH_DIR"
	crashKeyEnv     = "CRISP_SNAPSHOT_CRASH_KEY"
	crashPerturbEnv = "CRISP_SNAPSHOT_CRASH_PERTURB"
)

// crashClassifier builds the deterministic model both the helper process and
// the parent use: same seed, same architecture, so the parent can verify the
// surviving record bit-for-bit without shipping weights across processes.
func crashClassifier() *nn.Classifier {
	return models.Build(models.ResNet, rand.New(rand.NewSource(41)), 6, 1)
}

// TestCrashHelperProcess is the subprocess body; it only runs when the
// parent test sets crashDirEnv. It writes one record for crashKeyEnv into
// the snapshot store, dying at whatever crash point fault.CrashEnv names.
func TestCrashHelperProcess(t *testing.T) {
	dir := os.Getenv(crashDirEnv)
	if dir == "" {
		t.Skip("helper process for the crash tests; driven by runCrashHelper")
	}
	fault.ArmCrashFromEnv()
	st, err := openStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	clf := crashClassifier()
	if os.Getenv(crashPerturbEnv) == "1" {
		clf.Params()[0].W.Data[0] = 123.456
	}
	key := os.Getenv(crashKeyEnv)
	rec := checkpoint.PersonalizationRecord{Key: key, Classes: []int{1, 2}, Accuracy: 0.5}
	if err := st.put(rec, clf); err != nil {
		t.Fatal(err)
	}
}

// runCrashHelper re-execs the test binary as a crash helper. point "" means
// run to completion (exit 0); a named crash point must kill the child with
// fault.CrashExitCode — anything else (including the point never firing)
// fails the parent test.
func runCrashHelper(t *testing.T, dir, point, key string, perturb bool) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashHelperProcess$", "-test.v")
	cmd.Env = append(os.Environ(),
		crashDirEnv+"="+dir,
		crashKeyEnv+"="+key,
		fault.CrashEnv+"="+point,
	)
	if perturb {
		cmd.Env = append(cmd.Env, crashPerturbEnv+"=1")
	}
	out, err := cmd.CombinedOutput()
	if point == "" {
		if err != nil {
			t.Fatalf("helper (no crash point) failed: %v\n%s", err, out)
		}
		return
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != fault.CrashExitCode {
		t.Fatalf("helper at %q exited %v, want crash exit %d\n%s", point, err, fault.CrashExitCode, out)
	}
}

// TestCrashBeforeRenamePreservesPriorRecord kills the writer after the new
// record bytes are written and fsynced but before the rename publishes them,
// while overwriting an existing durable record. The prior record must
// survive untouched: a crash mid-replacement may cost the update, never the
// acknowledged state.
func TestCrashBeforeRenamePreservesPriorRecord(t *testing.T) {
	dir := t.TempDir()
	runCrashHelper(t, dir, "", "1,2", false)                      // durable v1
	runCrashHelper(t, dir, "snapshot.before-rename", "1,2", true) // v2 dies pre-publish
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 1 {
		t.Fatalf("want exactly the orphaned temp file from the crash, got %v", tmps)
	}

	st, err := openStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	clone := crashClassifier()
	want := clone.Params()[0].W.Data[0] // v1 value, rebuilt from the seed
	rec, err := st.load("1,2", clone)
	if err != nil {
		t.Fatalf("prior record did not survive the crash: %v", err)
	}
	if rec.Key != "1,2" {
		t.Fatalf("restored key %q", rec.Key)
	}
	if got := clone.Params()[0].W.Data[0]; got != want || got == 123.456 {
		t.Fatalf("restored weight %v, want pre-crash value %v", got, want)
	}
}

// TestCrashBeforeIndexLeavesCleanMiss kills the writer after the record is
// renamed into place and the directory fsynced, but before the index entry
// acknowledges it. The key must read as a clean miss (errNoSnapshot, no
// error, no quarantine) and a later put of the same key must index normally.
func TestCrashBeforeIndexLeavesCleanMiss(t *testing.T) {
	dir := t.TempDir()
	runCrashHelper(t, dir, "snapshot.before-index", "3,4", false)
	name := fileFor("3,4")
	if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
		t.Fatalf("renamed record missing, crash fired too early: %v", err)
	}

	st, err := openStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.load("3,4", crashClassifier()); !errors.Is(err, errNoSnapshot) {
		t.Fatalf("unacknowledged record must be a clean miss, got %v", err)
	}
	// The slot heals: re-putting the key publishes and indexes normally.
	rec := checkpoint.PersonalizationRecord{Key: "3,4", Classes: []int{1, 2}, Accuracy: 0.5}
	if err := st.put(rec, crashClassifier()); err != nil {
		t.Fatal(err)
	}
	if _, err := st.load("3,4", crashClassifier()); err != nil {
		t.Fatalf("re-put record failed to load: %v", err)
	}
}

// TestSnapshotPutFsyncOrdering pins the durability dance with a pure-recorder
// FaultFS: record fsync strictly before the rename, directory fsync after
// it, and the index append fsynced last. Reordering any of these reopens
// the power-cut window the crash tests close.
func TestSnapshotPutFsyncOrdering(t *testing.T) {
	dir := t.TempDir()
	ffs := fault.NewFS(fault.OS{}, fault.NewInjector(1), fault.DiskFaults{})
	ffs.EnableTrace()
	st, err := openStore(dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	rec := checkpoint.PersonalizationRecord{Key: "1,2", Classes: []int{1, 2}, Accuracy: 0.5}
	if err := st.put(rec, crashClassifier()); err != nil {
		t.Fatal(err)
	}

	ops := ffs.Trace()
	find := func(what string, pred func(fault.Op) bool) int {
		for i, op := range ops {
			if pred(op) {
				return i
			}
		}
		t.Fatalf("no %s in trace %v", what, ops)
		return -1
	}
	syncTmp := find("temp-file sync", func(op fault.Op) bool {
		return op.Kind == "sync" && strings.HasSuffix(op.Name, ".tmp")
	})
	rename := find("record rename", func(op fault.Op) bool {
		return op.Kind == "rename" && op.Name == fileFor("1,2")
	})
	syncDir := find("directory sync", func(op fault.Op) bool { return op.Kind == "syncdir" })
	syncIdx := find("index sync", func(op fault.Op) bool {
		return op.Kind == "sync" && op.Name == checkpoint.IndexFile
	})
	if !(syncTmp < rename && rename < syncDir && syncDir < syncIdx) {
		t.Fatalf("durability order violated: sync(tmp)=%d rename=%d syncdir=%d sync(index)=%d\n%v",
			syncTmp, rename, syncDir, syncIdx, ops)
	}
}

// TestSnapshotWriteFaultsCountedAndHeal runs a server whose snapshot disk
// refuses every record write (injected ENOSPC): snapshots fail and are
// counted, nothing is indexed, serving continues — and once the disk heals,
// an explicit Flush writes the record with no restart.
func TestSnapshotWriteFaultsCountedAndHeal(t *testing.T) {
	ckptOnly := func(name string) bool { return strings.Contains(filepath.Base(name), ".ckpt") }
	ffs := fault.NewFS(fault.OS{}, fault.NewInjector(11), fault.DiskFaults{WriteErr: 1, Match: ckptOnly})
	opts, _ := snapshotOpts(t)
	opts.FS = ffs
	s := newTestServer(t, opts)

	if _, _, err := s.Personalize([]int{1, 2}); err != nil {
		t.Fatal(err) // serving must not depend on the snapshot disk
	}
	if n, err := s.Flush(); err == nil || n != 0 {
		t.Fatalf("Flush on a failing disk wrote %d (err %v), want 0 and an error", n, err)
	}
	st := s.Stats()
	if st.SnapshotErrors == 0 || st.ColdRecords != 0 {
		t.Fatalf("failed writes not accounted: %+v", st)
	}

	ffs.SetEnabled(false) // the disk heals
	if n, err := s.Flush(); err != nil || n != 1 {
		t.Fatalf("Flush after healing wrote %d (%v), want 1", n, err)
	}
}

// TestRestoreBitFlipQuarantines flips one bit per read on the record files:
// every restore must fail closed on the checksum (never serve perturbed
// logits), quarantine the record, and leave the key to a fresh re-prune.
func TestRestoreBitFlipQuarantines(t *testing.T) {
	opts, dir := snapshotOpts(t)
	s1 := newTestServer(t, opts)
	if _, _, err := s1.Personalize([]int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Flush(); err != nil {
		t.Fatal(err)
	}

	ckptOnly := func(name string) bool { return strings.Contains(filepath.Base(name), ".ckpt") }
	ffs := fault.NewFS(fault.OS{}, fault.NewInjector(23), fault.DiskFaults{ReadFlip: 1, Match: ckptOnly})
	opts.FS = ffs
	s2 := newTestServer(t, opts)
	n, err := s2.Restore()
	if err != nil || n != 0 {
		t.Fatalf("Restore over a corrupting disk: n=%d err=%v, want 0 restored and no hard error", n, err)
	}
	st := s2.Stats()
	if st.RestoreErrors != 1 || st.SnapshotsQuarantined != 1 {
		t.Fatalf("corrupt record not quarantined: %+v", st)
	}
	if ffs.Stats().ReadFlips == 0 {
		t.Fatal("fault layer never fired; test is vacuous")
	}
	if _, err := os.Stat(filepath.Join(dir, fileFor("1,2")+quarantineSuffix)); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}

	ffs.SetEnabled(false)
	p, _, err := s2.Personalize([]int{1, 2})
	if err != nil || p.Engine() == nil {
		t.Fatalf("quarantined key did not re-personalize: %v", err)
	}
	if st := s2.Stats(); st.Personalizations != 1 {
		t.Fatalf("want exactly one re-prune, got %+v", st)
	}
}
