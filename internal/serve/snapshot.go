package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/data"
	"repro/internal/fault"
	"repro/internal/nn"
)

// ErrNoSnapshotDir reports a snapshot operation on a server configured
// without Options.SnapshotDir.
var ErrNoSnapshotDir = errors.New("serve: snapshot store not configured")

// quarantineSuffix is appended to a corrupt record's filename when the
// store moves it aside: the bytes stay on disk for postmortems, but nothing
// will ever index or load them again.
const quarantineSuffix = ".quarantined"

// snapshotStore is the durable side of the engine cache: one checkpoint
// record per personalized class set, plus an index file naming the records
// that are valid. Record writes go to a unique temp file — fsynced, then
// renamed into place, then the directory fsynced — so concurrent writers, a
// crash mid-write, and a power cut mid-rename can never leave a torn or
// vanishing record behind the index. All I/O goes through fs, the fault-
// injection seam (fault.OS in production).
type snapshotStore struct {
	dir string
	fs  fault.FS

	// mu guards index (in memory and its file): index rewrites must not
	// interleave.
	mu    sync.Mutex
	index checkpoint.Index
}

// openStore opens (creating if needed) a snapshot directory. An unreadable
// or corrupt index fails the server loudly: silently starting empty would
// orphan every existing record, and the next write would rewrite the index
// without them — the opposite of durability. (A write torn by a crash is
// not corruption: ReadIndex drops the partial tail entry.) The journal is
// compacted back to one entry per key on open.
func openStore(dir string, fsys fault.FS) (*snapshotStore, error) {
	if fsys == nil {
		fsys = fault.OS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: snapshot dir: %w", err)
	}
	path := filepath.Join(dir, checkpoint.IndexFile)
	idx, err := checkpoint.ReadIndexFS(fsys, path)
	if err != nil {
		return nil, fmt.Errorf("serve: snapshot index: %w", err)
	}
	// Compact whenever the file exists — even to an empty index: this
	// truncates a torn tail left by a crash, so later appends never
	// concatenate onto a partial line.
	if _, statErr := fsys.Stat(path); statErr == nil {
		if err := checkpoint.WriteIndexFS(fsys, path, idx); err != nil {
			return nil, fmt.Errorf("serve: compacting snapshot index: %w", err)
		}
	}
	return &snapshotStore{dir: dir, fs: fsys, index: idx}, nil
}

// fileFor names the record file of a key. Keys can be arbitrarily long
// class lists, so the name is a hash; the index maps keys to names and the
// record itself carries the key, which load verifies against collisions.
func fileFor(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return fmt.Sprintf("p%016x.ckpt", h.Sum64())
}

// has reports whether a record for key is indexed.
func (st *snapshotStore) has(key string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	_, ok := st.index[key]
	return ok
}

// count returns the number of indexed records (the cold-tier gauge).
func (st *snapshotStore) count() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.index)
}

// keys returns the indexed keys in sorted order.
func (st *snapshotStore) keys() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]string, 0, len(st.index))
	for k := range st.index {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// refresh merges the on-disk index into memory. Shards sharing a snapshot
// directory each journal their own appends; the on-disk index is therefore
// a superset of any one shard's in-memory view, and merging (last write
// wins per key) lets this shard restore records its peers wrote after this
// store opened.
func (st *snapshotStore) refresh() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.mergeDiskLocked()
}

// mergeDiskLocked folds the on-disk index into st.index (last write wins
// per key). Callers hold st.mu.
func (st *snapshotStore) mergeDiskLocked() error {
	idx, err := checkpoint.ReadIndexFS(st.fs, filepath.Join(st.dir, checkpoint.IndexFile))
	if err != nil {
		return err
	}
	for k, name := range idx {
		st.index[k] = name
	}
	return nil
}

// put durably writes one personalization record and indexes it. The order
// is load-bearing: the record bytes are fsynced BEFORE the rename publishes
// the name, and the directory is fsynced before the index acknowledges the
// key — a power cut at any instant leaves either the old state or the new,
// never a named-but-empty record. The named crash points mark the two
// instants a crash-point test kills the process at to prove exactly that.
func (st *snapshotStore) put(rec checkpoint.PersonalizationRecord, clf *nn.Classifier) error {
	name := fileFor(rec.Key)
	tmp, err := st.fs.CreateTemp(st.dir, name+".*.tmp")
	if err != nil {
		return err
	}
	defer st.fs.Remove(tmp.Name()) // no-op after a successful rename
	if err := checkpoint.SavePersonalization(tmp, rec, clf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	fault.Crash("snapshot.before-rename")
	if err := st.fs.Rename(tmp.Name(), filepath.Join(st.dir, name)); err != nil {
		return err
	}
	if err := st.fs.SyncDir(st.dir); err != nil {
		return err
	}
	fault.Crash("snapshot.before-index")

	st.mu.Lock()
	defer st.mu.Unlock()
	if st.index[rec.Key] == name {
		// Re-snapshot of an already-indexed key (e.g. healing a corrupt
		// record): the rename replaced the file, no journal entry needed.
		return nil
	}
	if err := checkpoint.AppendIndexFS(st.fs, filepath.Join(st.dir, checkpoint.IndexFile), rec.Key, name); err != nil {
		return err
	}
	st.index[rec.Key] = name
	return nil
}

// load restores the record for key into clf. It returns errNoSnapshot when
// the key is not indexed; any other error means the record exists but could
// not be used (corrupt, truncated, missing, or a hash collision with
// another key). Unusable records are quarantined on the way out — see
// quarantine — so a corrupt snapshot costs one re-prune, not an error on
// every future restore.
func (st *snapshotStore) load(key string, clf *nn.Classifier) (checkpoint.PersonalizationRecord, error) {
	st.mu.Lock()
	name, ok := st.index[key]
	st.mu.Unlock()
	if !ok {
		return checkpoint.PersonalizationRecord{}, errNoSnapshot
	}
	f, err := st.fs.Open(filepath.Join(st.dir, name))
	if err != nil {
		if os.IsNotExist(err) {
			// Indexed but gone: the record will never come back on its own.
			return checkpoint.PersonalizationRecord{}, st.quarantine(key, name, err)
		}
		// Other open errors (permissions, transient I/O) may heal; leave
		// the index alone.
		return checkpoint.PersonalizationRecord{}, err
	}
	defer f.Close()
	rec, err := checkpoint.LoadPersonalization(f, clf)
	if err != nil {
		return rec, st.quarantine(key, name, fmt.Errorf("serve: snapshot %s: %w", name, err))
	}
	if rec.Key != key {
		return rec, st.quarantine(key, name, fmt.Errorf("serve: snapshot %s holds key %q, want %q", name, rec.Key, key))
	}
	return rec, nil
}

// quarantine takes a record the store can no longer trust out of service:
// the file is moved aside (kept for postmortems, never loaded again), the
// key is de-indexed, and the rewritten index is published atomically. The
// next personalization of the key falls through to a fresh pruning run,
// which re-snapshots over the slot — so corruption degrades to one re-prune
// instead of a restore error on every request forever. The returned error
// wraps both cause and errSnapshotQuarantined (the caller's counter hook).
func (st *snapshotStore) quarantine(key, name string, cause error) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.index[key] != name {
		// A concurrent writer already replaced the record; nothing to do.
		return cause
	}
	// Shards share the directory: peers journal appends this store may not
	// have refreshed into memory yet, and rewriting the index from a stale
	// view would silently drop their records — turning each one's next
	// restore into a needless re-prune. Merge the on-disk index first so
	// the rewrite removes only the quarantined key. Best effort: on a read
	// error the local view still de-indexes correctly for this process.
	if err := st.mergeDiskLocked(); err == nil && st.index[key] != name {
		// A peer re-snapshotted this key while we held the bad record;
		// its fresh version supersedes the quarantine.
		return cause
	}
	// Best effort: if the move itself fails the de-index below still keeps
	// the record from ever being loaded again.
	_ = st.fs.Rename(filepath.Join(st.dir, name), filepath.Join(st.dir, name+quarantineSuffix))
	delete(st.index, key)
	if err := checkpoint.WriteIndexFS(st.fs, filepath.Join(st.dir, checkpoint.IndexFile), st.index); err != nil {
		// The in-memory de-index holds for this process; the on-disk entry
		// now points at a missing file, which quarantines again on restart.
		return fmt.Errorf("%w (de-indexing failed: %v): %w", cause, err, errSnapshotQuarantined)
	}
	return fmt.Errorf("%w: %w", cause, errSnapshotQuarantined)
}

// errNoSnapshot distinguishes "never snapshotted" (a plain cache miss) from
// a record that exists but fails to load (counted in Stats.RestoreErrors).
var errNoSnapshot = errors.New("serve: no snapshot for key")

// errSnapshotQuarantined tags load errors whose record was moved aside and
// de-indexed (counted in Stats.SnapshotsQuarantined).
var errSnapshotQuarantined = errors.New("record quarantined")

// restoreOne rebuilds a Personalization from its disk record: the pruned
// weights and masks load into a fresh clone and the sparse formats are
// recompiled from the masks — compiled CSR/CRISP buffers are never
// persisted, so the on-disk format stays independent of the kernel layout.
// On an Int8 server that recompilation re-quantizes: snapshot records are
// precision-agnostic (float weights + masks), and because quantization is
// deterministic the restored engine carries exactly the pre-restart codes
// (Engine.QuantSignature pins this); the agreement measurement is re-run on
// the same deterministic held-out split.
func (s *Server) restoreOne(key string) (*Personalization, error) {
	clone := s.build()
	rec, err := s.store.load(key, clone)
	if err != nil {
		if errors.Is(err, errSnapshotQuarantined) {
			s.mu.Lock()
			s.stats.SnapshotsQuarantined++
			s.mu.Unlock()
		}
		return nil, err
	}
	// The split is only synthesized when the precision measures agreement
	// (Int8); Float32 restores skip the generation cost entirely.
	eng, agreement, err := s.compileEngine(clone, key, func() data.Split {
		return s.ds.MakeSplit("serve-test/"+key, rec.Classes, s.opts.TestPerClass)
	})
	if err != nil {
		return nil, fmt.Errorf("serve: restoring {%s}: %w", key, err)
	}
	return s.newPersonalization(key, rec.Classes, rec.Report, rec.Accuracy, agreement, eng, clone), nil
}

// Restore rebuilds engines from indexed snapshot records and inserts them
// into the cache (the warm-restart path), stopping once the cache is full:
// building engines the LRU would immediately evict is wasted startup time,
// and the miss path restores any remaining key lazily on first request.
// Records that fail to load are skipped and counted in
// Stats.RestoreErrors — a corrupt snapshot must never take the server
// down. It returns the number restored; keys already cached are left
// untouched. Restore is safe to run concurrently with serving traffic.
func (s *Server) Restore() (int, error) {
	if s.store == nil {
		return 0, ErrNoSnapshotDir
	}
	restored := 0
	for _, key := range s.store.keys() {
		s.mu.Lock()
		_, cached := s.entries[key]
		full := s.hotFullLocked()
		s.mu.Unlock()
		if full {
			break
		}
		if cached {
			continue
		}
		p, err := s.restoreOne(key)
		if err != nil {
			s.mu.Lock()
			s.stats.RestoreErrors++
			s.mu.Unlock()
			continue
		}
		s.mu.Lock()
		// A concurrent personalization may have cached the key while the
		// engine compiled; only a real insert counts as a restore.
		if s.insertLocked(key, p) {
			s.stats.RestoreHits++
			restored++
			s.mu.Unlock()
		} else {
			s.mu.Unlock()
			p.release()
		}
	}
	// Engine sizes are only known after compilation, so a byte-budgeted
	// restore can overshoot by one engine; settle the tiers before serving.
	s.rebalance()
	return restored, nil
}

// Flush waits for pending write-behind snapshots, then synchronously writes
// every cached personalization that is not yet on disk (the explicit-flush
// admin path). It returns the number of records written; write failures are
// counted in Stats.SnapshotErrors and the first one is returned.
func (s *Server) Flush() (int, error) {
	if s.store == nil {
		return 0, ErrNoSnapshotDir
	}
	s.pendingWait(&s.pendingSnaps)

	s.mu.Lock()
	pending := make([]*Personalization, 0, len(s.entries))
	for _, el := range s.entries {
		p := el.Value.(*Personalization)
		if !s.store.has(p.Key) {
			pending = append(pending, p)
		}
	}
	s.mu.Unlock()

	written := 0
	var firstErr error
	for _, p := range pending {
		if err := s.writeSnapshot(p); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		written++
	}
	return written, firstErr
}

// scheduleSnapshot queues the write-behind snapshot of p on the worker
// pool: personalization latency and Predict never wait on disk. The
// pending write was already registered (pendingSnaps) by the pruning job
// itself (see personalize), so a personalization completed before Close
// returns is never lost — Close drains the jobs and then waits out the
// registered writes; on a closed pool they run inline.
func (s *Server) scheduleSnapshot(p *Personalization) {
	go func() {
		defer s.pendingDone(&s.pendingSnaps)
		s.pool.Do(func() { s.writeSnapshot(p) })
	}()
}

// writeSnapshot persists one personalization and updates the counters.
func (s *Server) writeSnapshot(p *Personalization) error {
	err := s.store.put(checkpoint.PersonalizationRecord{
		Key:      p.Key,
		Classes:  p.Classes,
		Accuracy: p.Accuracy,
		Report:   p.Report,
	}, p.clf)
	s.mu.Lock()
	if err != nil {
		s.stats.SnapshotErrors++
	} else {
		s.stats.SnapshotWrites++
	}
	s.mu.Unlock()
	return err
}
