package serve

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/data"
	"repro/internal/fault"
	"repro/internal/format"
	"repro/internal/inference"
	"repro/internal/nn"
	"repro/internal/pruner"
	"repro/internal/tensor"
)

// Options configures a Server.
type Options struct {
	// Workers bounds concurrent personalization jobs (<= 0: GOMAXPROCS).
	Workers int
	// CacheSize is the maximum number of personalized engines kept alive;
	// beyond it the least recently used engine is evicted (<= 0: 64).
	CacheSize int
	// Prune configures the CRISP pruning run behind every personalization;
	// zero fields take the pruner defaults (pruner.Options.WithDefaults).
	Prune pruner.Options
	// TrainPerClass and TestPerClass size the per-user splits
	// (<= 0: 32 and 16).
	TrainPerClass, TestPerClass int
	// SnapshotDir enables the durable personalization store: completed
	// personalizations are snapshotted to this directory (write-behind, on
	// the worker pool), cache misses check disk before re-pruning, and
	// Restore rebuilds every engine on startup. Empty means memory-only.
	SnapshotDir string
	// MaxBatch enables cross-request dynamic batching: concurrent Predict
	// calls against one personalization coalesce into shared engine
	// invocations, flushed once the queue holds MaxBatch samples (or the
	// Linger timeout fires). 1 disables batching (every request runs its
	// own engine call); <= 0 defaults to 16. Batched results are
	// bit-identical to the solo path.
	MaxBatch int
	// Linger is how long a batch leader waits for more requests before
	// flushing a sub-MaxBatch batch (<= 0: 2ms). It bounds the latency a
	// lone request pays for the chance to share a batch.
	Linger time.Duration
	// MaxQueue bounds each personalization's predict queue, in samples;
	// a request that would overflow it is rejected with ErrOverloaded
	// (admission control) instead of queueing unboundedly (<= 0: 256).
	MaxQueue int
	// Precision selects the execution precision personalized engines are
	// compiled at: inference.Float32 (the default, bit-identical to the
	// masked dense model) or inference.Int8 (quantized plans — int8 weight
	// codes, int32 accumulate; approximate). At Int8 every personalization
	// additionally compiles a float reference engine once and measures its
	// top-1 agreement on the held-out split, surfaced per tenant as
	// Personalization.Agreement and aggregated in Stats.
	Precision inference.Precision
	// MemoryBudgetBytes, when > 0, turns the engine cache into a three-tier
	// hot/warm/cold hierarchy governed by a byte budget instead of a pure
	// count LRU: hot compiled engines may use up to HotFraction of the
	// budget, engines evicted from hot are demoted to compact warm records
	// (a delta over the shared universal weights — typically a small
	// fraction of a full copy), and warm records squeezed out by the budget
	// fall back to the cold tier (disk snapshots, when SnapshotDir is set).
	// Promotion back to hot is bit-identical on the float path and
	// QuantSignature-identical on int8. 0 (the default) keeps the
	// single-level count-bounded LRU: evicted engines release their state
	// immediately and rely on the cold tier alone.
	MemoryBudgetBytes int64
	// HotFraction is the share of MemoryBudgetBytes reserved for hot
	// compiled engines; the remainder holds warm records. Outside (0, 1]
	// it defaults to 0.75. Ignored when MemoryBudgetBytes is 0.
	HotFraction float64
	// QoS configures the load-shaping layer: per-tenant service classes
	// (gold/standard/batch) with class-weighted token-bucket quotas,
	// deadline-aware batch flushing, and weighted shedding that drops
	// over-quota tenants (ErrOverQuota) before admission control has to
	// reject everyone. Zero-valued fields take the class defaults
	// (DefaultQoSPolicy); set QoS.Disabled for the FIFO baseline.
	QoS QoSOptions
	// FS is the filesystem the snapshot store writes through; nil means the
	// real one (fault.OS). Crash/chaos tests and cmd/crisp-chaos pass a
	// fault.NewFS here to inject torn writes, read bit-flips and fsync
	// stalls under the serving stack without touching it.
	FS fault.FS
}

// withDefaults fills unset serving options.
func (o Options) withDefaults() Options {
	if o.CacheSize <= 0 {
		o.CacheSize = 64
	}
	if o.TrainPerClass <= 0 {
		o.TrainPerClass = 32
	}
	if o.TestPerClass <= 0 {
		o.TestPerClass = 16
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 16
	}
	if o.Linger <= 0 {
		o.Linger = 2 * time.Millisecond
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 256
	}
	if o.MemoryBudgetBytes < 0 {
		o.MemoryBudgetBytes = 0
	}
	if o.HotFraction <= 0 || o.HotFraction > 1 {
		o.HotFraction = 0.75
	}
	if o.FS == nil {
		o.FS = fault.OS{}
	}
	o.Prune = o.Prune.WithDefaults()
	return o
}

// Personalization is one cached tenant model: the CRISP-pruned classifier
// for a class set, its compiled sparse engine, and the pruning outcome.
// It is immutable after creation and safe for concurrent Predict use.
type Personalization struct {
	// Key is the canonical cache key (sorted, deduplicated class ids).
	Key string
	// Classes is the canonical class set.
	Classes []int
	// Report is the pruning run summary.
	Report pruner.Report
	// Accuracy is top-1 accuracy on held-out samples of the classes.
	Accuracy float64
	// Agreement is the measured top-1 agreement between this engine and the
	// full-precision reference on the held-out split — the per-tenant cost
	// of int8 deployment. Trivially 1 for Float32 engines (they are the
	// reference).
	Agreement float64

	engine *inference.Engine
	clf    *nn.Classifier
	// bat coalesces concurrent Predict calls against this engine; nil when
	// batching is disabled (Options.MaxBatch <= 1).
	bat *batcher
	// qos is the tenant's service class (a QoSClass; atomic because
	// PersonalizeQoS may re-class a tenant while predicts are in flight).
	// bucket is its token-bucket quota, charged per predicted sample at the
	// class rate.
	qos    atomic.Int32
	bucket tokenBucket
	// size is the resident cost this personalization charges against the
	// hot tier: engine-owned compiled state plus the model clone, fixed at
	// creation (see Server.sizeOf).
	size int64
	// releaseOnce guards release: eviction paths may race a duplicate
	// insert's loser cleanup.
	releaseOnce sync.Once
}

// release frees the per-tenant serving state an eviction leaves behind:
// the batcher's queued generation is flushed (its waiting callers are
// served, its pooled slices recycled) and the engine returns its shared
// plan references to the dedup registry. In-flight Predicts racing the
// release still complete — nothing the engine computes with is freed, only
// shared-ownership bookkeeping. Idempotent.
func (p *Personalization) release() {
	p.releaseOnce.Do(func() {
		if p.bat != nil {
			p.bat.forceFlush()
		}
		if p.engine != nil {
			p.engine.Release()
		}
	})
}

// Engine exposes the compiled sparse inference engine.
func (p *Personalization) Engine() *inference.Engine { return p.engine }

// QoS returns the tenant's current service class.
func (p *Personalization) QoS() QoSClass { return QoSClass(p.qos.Load()) }

// Stats is a point-in-time snapshot of the server's counters.
type Stats struct {
	// Requests counts Personalize calls (including ones served from cache).
	Requests uint64 `json:"requests"`
	// CacheHits, CacheMisses and DedupJoins partition Requests: a hit found
	// a cached engine, a miss started a pruning job, a join attached to an
	// identical in-flight job instead of starting a duplicate.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	DedupJoins  uint64 `json:"dedup_joins"`
	// Evictions counts engines dropped by the LRU policy.
	Evictions uint64 `json:"evictions"`
	// Personalizations counts completed pruning jobs.
	Personalizations uint64 `json:"personalizations"`
	// PredictBatches and SamplesPredicted count engine invocations on the
	// predict path and the samples they served; with dynamic batching one
	// batch serves many concurrent requests.
	PredictBatches   uint64 `json:"predict_batches"`
	SamplesPredicted uint64 `json:"samples_predicted"`
	// Rejected counts Predict requests dropped by admission control
	// (ErrOverloaded: the personalization's queue was full).
	Rejected uint64 `json:"rejected"`
	// FlushSize, FlushLinger, FlushForced and FlushDeadline partition
	// batched flushes by trigger: the queue reached MaxBatch samples, the
	// linger window (relative to the oldest rider's arrival) closed, a
	// DrainBatches forced a partial batch out, or the oldest rider's QoS
	// latency budget neared exhaustion (deadline-aware linger).
	FlushSize     uint64 `json:"flush_size"`
	FlushLinger   uint64 `json:"flush_linger"`
	FlushForced   uint64 `json:"flush_forced"`
	FlushDeadline uint64 `json:"flush_deadline"`
	// ShedByClass counts weighted-shedding drops (ErrOverQuota) per QoS
	// class name: over-quota tenants dropped under queue pressure before
	// blanket admission control has to 429 everyone.
	ShedByClass map[string]uint64 `json:"shed_by_class"`
	// QueueWait captures batched-predict queue waits (rider arrival → flush
	// start) per QoS class name.
	QueueWait map[string]QueueWaitStats `json:"queue_wait"`
	// QoSEnabled reports whether the load-shaping layer is active (false
	// when Options.QoS.Disabled — the FIFO baseline).
	QoSEnabled bool `json:"qos_enabled"`
	// PredictNS is cumulative wall time (nanoseconds) spent inside engine
	// invocations on the predict path; PredictNS / PredictBatches is the
	// mean batch latency.
	PredictNS uint64 `json:"predict_ns"`
	// BatchSizeHist is a histogram of engine-invocation batch sizes with
	// upper bounds 1, 2, 4, 8, 16, 32, 64, +Inf (samples per invocation).
	BatchSizeHist [8]uint64 `json:"batch_size_hist"`
	// QueueDepth is the current number of samples waiting in predict
	// queues across all personalizations.
	QueueDepth int `json:"queue_depth"`
	// SnapshotWrites counts personalization records durably written to the
	// snapshot store; SnapshotErrors counts failed writes (the engine stays
	// cached either way).
	SnapshotWrites uint64 `json:"snapshot_writes"`
	SnapshotErrors uint64 `json:"snapshot_errors"`
	// RestoreHits counts engines rebuilt from disk instead of re-pruned
	// (both Server.Restore and the cache-miss path); RestoreErrors counts
	// records that failed to load and were skipped.
	RestoreHits   uint64 `json:"restore_hits"`
	RestoreErrors uint64 `json:"restore_errors"`
	// SnapshotsQuarantined counts corrupt on-disk records the restore path
	// moved aside (renamed *.quarantined and de-indexed). Each one costs
	// exactly one re-prune — the next personalization of the key runs fresh
	// and re-snapshots over the slot — instead of failing every restore of
	// that tenant forever.
	SnapshotsQuarantined uint64 `json:"snapshots_quarantined"`
	// HandoffRestores counts tenants adopted from another shard via
	// RestoreTenant (verified against the sending shard's fingerprints);
	// HandoffErrors counts adoptions that failed (missing record or a
	// fingerprint mismatch). Draining reports BeginDrain was called: this
	// shard serves resident tenants but accepts no new ones.
	HandoffRestores uint64 `json:"handoff_restores"`
	HandoffErrors   uint64 `json:"handoff_errors"`
	Draining        bool   `json:"draining"`
	// Tier flows (MemoryBudgetBytes > 0): WarmHits counts cache misses
	// resolved by a warm delta record, Promotions the engines those rebuilt
	// into the hot tier, Demotions the hot engines compacted to warm
	// records on eviction, WarmEvictions the warm records dropped for
	// budget (their cold snapshot, if any, remains), and PromoteErrors the
	// warm records that failed verification at promote time (the request
	// fell through to cold restore or a fresh prune).
	WarmHits      uint64 `json:"warm_hits"`
	Promotions    uint64 `json:"promotions"`
	Demotions     uint64 `json:"demotions"`
	WarmEvictions uint64 `json:"warm_evictions"`
	PromoteErrors uint64 `json:"promote_errors"`
	// CachedEngines and InFlight are current gauges.
	CachedEngines int `json:"cached_engines"`
	InFlight      int `json:"in_flight"`
	// MemoryBudgetBytes echoes Options.MemoryBudgetBytes (0: single-level
	// LRU); HotBytes and WarmBytes are the tier residencies it governs;
	// WarmEntries and ColdRecords count warm delta records and indexed disk
	// snapshots.
	MemoryBudgetBytes int64 `json:"memory_budget_bytes"`
	HotBytes          int64 `json:"hot_bytes"`
	WarmBytes         int64 `json:"warm_bytes"`
	WarmEntries       int   `json:"warm_entries"`
	ColdRecords       int   `json:"cold_records"`
	// SharedPlans/SharedPlanRefs/SharedPlanBytes snapshot the cross-tenant
	// plan dedup registry: canonical compiled plans alive, engine
	// references onto them, and the bytes one copy of each occupies.
	// Stable refs across personalize/evict cycles double as a leak probe.
	SharedPlans     int   `json:"shared_plans"`
	SharedPlanRefs  int   `json:"shared_plan_refs"`
	SharedPlanBytes int64 `json:"shared_plan_bytes"`
	// Workers echoes the pool bound.
	Workers int `json:"workers"`
	// Precision echoes the engine precision mode every personalization is
	// compiled at ("float32" or "int8").
	Precision string `json:"precision"`
	// AgreementSamples and AgreementMatches accumulate the per-
	// personalization int8-vs-float top-1 agreement measurements (Int8
	// servers only; each completed or restored personalization contributes
	// its held-out split once). Top1Agreement is their ratio — the measured
	// fleet-wide accuracy cost of serving quantized — or 1 when nothing has
	// been measured yet.
	AgreementSamples uint64  `json:"agreement_samples"`
	AgreementMatches uint64  `json:"agreement_matches"`
	Top1Agreement    float64 `json:"top1_agreement"`
}

// QueueWaitStats is one QoS class's queue-wait distribution: a histogram
// over QueueWaitBoundsMS plus the sum and count for means.
type QueueWaitStats struct {
	// Hist buckets riders by queue wait; bucket i covers waits up to
	// QueueWaitBoundsMS[i] milliseconds, the last bucket is +Inf.
	Hist [len(QueueWaitBoundsMS) + 1]uint64 `json:"hist"`
	// SumNS is the cumulative queue wait in nanoseconds; Count the riders
	// measured.
	SumNS uint64 `json:"sum_ns"`
	Count uint64 `json:"count"`
}

// QueueWaitBoundsMS are the queue-wait histogram's upper bounds in
// milliseconds (the final implicit bucket is +Inf). Shared with the
// Prometheus exposition in internal/api.
var QueueWaitBoundsMS = [7]float64{0.25, 0.5, 1, 2.5, 5, 10, 50}

// predictCounters are the predict-path counters. The control-plane counters
// (Personalize bookkeeping) stay under Server.mu — they already hold it for
// the cache — but the predict fan-in is the hot path: with dynamic batching
// many goroutines retire per-request counters concurrently, so these are
// sync/atomic and never touch Server.mu (the -race storm in batcher_test.go
// guards this split).
type predictCounters struct {
	batches     atomic.Uint64    // engine invocations
	samples     atomic.Uint64    // samples those invocations served
	rejected    atomic.Uint64    // admission-control drops
	flushSize   atomic.Uint64    // batches flushed on MaxBatch
	flushLinger atomic.Uint64    // batches flushed on the Linger timer
	flushForced atomic.Uint64    // partial batches forced out by DrainBatches
	latencyNS   atomic.Uint64    // cumulative engine wall time
	queued      atomic.Int64     // gauge: samples waiting across batchers
	hist        [8]atomic.Uint64 // batch sizes: <=1,2,4,8,16,32,64,+Inf

	flushDeadline atomic.Uint64                // batches flushed on a rider's deadline
	shed          [NumQoSClasses]atomic.Uint64 // ErrOverQuota drops per class
	qwHist        [NumQoSClasses][len(QueueWaitBoundsMS) + 1]atomic.Uint64
	qwNS          [NumQoSClasses]atomic.Uint64
	qwCount       [NumQoSClasses]atomic.Uint64
}

// observe retires one engine invocation of n samples taking d.
func (c *predictCounters) observe(n int, d time.Duration) {
	c.batches.Add(1)
	c.samples.Add(uint64(n))
	c.latencyNS.Add(uint64(d.Nanoseconds()))
	b := 0
	for bound := 1; b < len(c.hist)-1 && n > bound; b++ {
		bound <<= 1
	}
	c.hist[b].Add(1)
}

// observeWait retires one rider's queue wait into its class histogram.
func (c *predictCounters) observeWait(class QoSClass, w time.Duration) {
	if class < 0 || int(class) >= NumQoSClasses {
		class = QoSStandard
	}
	ms := w.Seconds() * 1e3
	b := 0
	for b < len(QueueWaitBoundsMS) && ms > QueueWaitBoundsMS[b] {
		b++
	}
	c.qwHist[class][b].Add(1)
	if ns := w.Nanoseconds(); ns > 0 {
		c.qwNS[class].Add(uint64(ns))
	}
	c.qwCount[class].Add(1)
}

// inflightCall tracks one running personalization so identical concurrent
// requests share it (singleflight).
type inflightCall struct {
	done chan struct{}
	p    *Personalization
	err  error
}

// Server is the multi-tenant personalization service: it owns one
// pretrained universal model and materializes, caches and serves per-user
// CRISP-pruned engines.
type Server struct {
	opts  Options
	ds    *data.Dataset
	build func() *nn.Classifier
	base  *nn.Classifier
	pool  *Pool
	store *snapshotStore // nil when Options.SnapshotDir is empty
	// shared exposes the universal weights as immutable slabs every
	// compiled engine references instead of cloning, and registry dedups
	// bit-identical compiled plans across tenants. Both are active on every
	// server — sharing costs nothing — independent of MemoryBudgetBytes.
	shared   *inference.SharedWeights
	registry *format.Registry
	// budget and hotBudget freeze the tier policy derived from Options:
	// total resident bytes (hot + warm) and the hot tier's share. Zero
	// budget means the legacy single-level count LRU.
	budget, hotBudget int64
	// qos is the resolved load-shaping policy (see qos.go): per-class
	// latency budgets and quotas plus the shed watermark.
	qos qosRuntime
	// snapMu/snapCond guard the pending counters: pendingSnaps counts
	// write-behind snapshots not yet on disk, pendingJobs counts
	// personalization jobs between submission and their snapshot being
	// scheduled — Close drains both so no write is lost, even for a job
	// that lost the race to pool closure and ran inline on its caller. A
	// plain WaitGroup would be misuse here: live traffic Adds from zero
	// concurrently with Flush's Wait (the /snapshot endpoint), which the
	// WaitGroup contract forbids.
	snapMu       sync.Mutex
	snapCond     *sync.Cond
	pendingSnaps int
	pendingJobs  int

	// draining, once set (BeginDrain), rejects personalizations for tenants
	// this server does not already hold — the shard-side half of a cluster
	// handoff (see handoff.go).
	draining atomic.Bool

	mu       sync.Mutex
	entries  map[string]*list.Element // key -> lru element holding *Personalization
	lru      *list.List               // front = most recently used
	inflight map[string]*inflightCall
	// warm/warmLRU hold demoted tenants as delta records (see tier.go);
	// hotBytes/warmBytes are the tiers' current residencies.
	warm                map[string]*list.Element // key -> warmLRU element holding *warmEntry
	warmLRU             *list.List               // front = most recently demoted/touched
	hotBytes, warmBytes int64
	stats               Stats // control-plane counters only; see predictCounters

	counters predictCounters
}

// NewServer builds a server around a pretrained universal model. build must
// construct a fresh classifier architecturally identical to base; every
// personalization clones base's weights into a new instance before pruning,
// so base itself is never mutated. Invalid pruning options are reported as
// an error, not a panic: this is a user-facing entry point.
func NewServer(build func() *nn.Classifier, base *nn.Classifier, ds *data.Dataset, opts Options) (*Server, error) {
	if err := opts.Prune.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	s := &Server{
		opts:     opts,
		ds:       ds,
		build:    build,
		base:     base,
		pool:     NewPool(opts.Workers),
		shared:   inference.NewSharedWeights(base),
		registry: format.NewRegistry(),
		entries:  map[string]*list.Element{},
		lru:      list.New(),
		inflight: map[string]*inflightCall{},
		warm:     map[string]*list.Element{},
		warmLRU:  list.New(),
	}
	s.budget = opts.MemoryBudgetBytes
	if s.budget > 0 {
		s.hotBudget = int64(float64(s.budget) * opts.HotFraction)
	}
	s.stats.MemoryBudgetBytes = s.budget
	s.qos = newQoSRuntime(opts.QoS, opts.MaxQueue)
	s.stats.QoSEnabled = !s.qos.disabled
	s.snapCond = sync.NewCond(&s.snapMu)
	if opts.SnapshotDir != "" {
		store, err := openStore(opts.SnapshotDir, opts.FS)
		if err != nil {
			s.pool.Close()
			return nil, err
		}
		s.store = store
	}
	s.stats.Workers = s.pool.Workers()
	s.stats.Precision = opts.Precision.String()
	return s, nil
}

// Close waits for pending write-behind snapshots and drains the worker
// pool. Personalizations in flight when Close starts still get their
// snapshots: pool.Close drains pooled jobs, the job wait covers jobs that
// lost the race to pool closure and ran inline on their caller, and the
// final snapshot wait sees out every write they registered.
func (s *Server) Close() {
	s.pendingWait(&s.pendingSnaps)
	s.pool.Close()
	s.pendingWait(&s.pendingJobs)
	s.pendingWait(&s.pendingSnaps)
}

// pendingAdd/pendingDone/pendingWait maintain one of the pending counters
// (snapMu-guarded; counter must be a field of s).
func (s *Server) pendingAdd(counter *int) {
	s.snapMu.Lock()
	*counter++
	s.snapMu.Unlock()
}

func (s *Server) pendingDone(counter *int) {
	s.snapMu.Lock()
	if *counter--; *counter == 0 {
		s.snapCond.Broadcast()
	}
	s.snapMu.Unlock()
}

func (s *Server) pendingWait(counter *int) {
	s.snapMu.Lock()
	for *counter > 0 {
		s.snapCond.Wait()
	}
	s.snapMu.Unlock()
}

// Pool exposes the server's scheduler so other subsystems (the experiment
// runner, admission control in later PRs) can share it.
func (s *Server) Pool() *Pool { return s.pool }

// Canonicalize validates a user class set against the dataset and returns
// the sorted, deduplicated set plus its cache key.
func (s *Server) Canonicalize(classes []int) ([]int, string, error) {
	if len(classes) == 0 {
		return nil, "", fmt.Errorf("serve: empty class set")
	}
	seen := map[int]bool{}
	canon := make([]int, 0, len(classes))
	for _, c := range classes {
		if c < 0 || c >= s.ds.NumClasses {
			return nil, "", fmt.Errorf("serve: class %d outside [0,%d)", c, s.ds.NumClasses)
		}
		if !seen[c] {
			seen[c] = true
			canon = append(canon, c)
		}
	}
	sort.Ints(canon)
	parts := make([]string, len(canon))
	for i, c := range canon {
		parts[i] = strconv.Itoa(c)
	}
	return canon, strings.Join(parts, ","), nil
}

// Personalize returns the engine for the given class set, building it on
// the worker pool if it is neither cached nor already in flight. The bool
// reports whether the result came straight from the cache. The tenant's QoS
// class is left as it is (Standard for a brand-new tenant); use
// PersonalizeQoS to set it.
func (s *Server) Personalize(classes []int) (*Personalization, bool, error) {
	return s.personalizeLane(classes, LanePersonalize, nil)
}

// PersonalizeQoS is Personalize with an explicit service class: the tenant
// is created at (or an existing tenant re-classed to) qos, which selects
// its latency budget, quota rate and shed priority (see QoSOptions). QoS is
// a serving-time property — snapshots do not persist it, so a restored
// tenant reverts to Standard until its next PersonalizeQoS.
func (s *Server) PersonalizeQoS(classes []int, qos QoSClass) (*Personalization, bool, error) {
	return s.personalizeLane(classes, LanePersonalize, &qos)
}

// personalizeLane is the Personalize implementation: lane picks the pool
// admission lane (explicit personalizations vs predict-triggered misses —
// neither may starve the other; see Pool.DoLane), and qos, when non-nil,
// (re)classes the tenant on success.
func (s *Server) personalizeLane(classes []int, lane Lane, qos *QoSClass) (*Personalization, bool, error) {
	canon, key, err := s.Canonicalize(classes)
	if err != nil {
		return nil, false, err
	}

	s.mu.Lock()
	s.stats.Requests++
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		s.stats.CacheHits++
		p := el.Value.(*Personalization)
		s.mu.Unlock()
		if qos != nil {
			p.qos.Store(int32(*qos))
		}
		return p, true, nil
	}
	if c, ok := s.inflight[key]; ok {
		s.stats.DedupJoins++
		s.mu.Unlock()
		<-c.done
		if qos != nil && c.err == nil {
			c.p.qos.Store(int32(*qos))
		}
		return c.p, false, c.err
	}
	if s.draining.Load() {
		// A draining shard serves what it holds (hot hits above, warm
		// promotions below) but starts nothing new: a fresh tenant must land
		// on the shard the cluster router is re-placing keys onto.
		if _, warm := s.warm[key]; !warm {
			s.mu.Unlock()
			return nil, false, ErrDraining
		}
	}
	call := &inflightCall{done: make(chan struct{})}
	s.inflight[key] = call
	s.stats.CacheMisses++
	s.stats.InFlight = len(s.inflight)
	s.mu.Unlock()

	// Run the pruning job on the bounded pool; the call blocks here, but
	// identical requests piggyback on call.done instead of queueing twice.
	// The job is tracked from submission until its write-behind snapshot is
	// scheduled, so Close cannot slip between a job finishing inline (pool
	// already closed) and its snapshot registration.
	s.pendingAdd(&s.pendingJobs)
	defer s.pendingDone(&s.pendingJobs)
	var src personalizeSource
	s.pool.DoLane(lane, func() {
		call.p, src, call.err = s.personalize(canon, key)
	})
	if qos != nil && call.err == nil {
		call.p.qos.Store(int32(*qos))
	}

	s.mu.Lock()
	inserted := false
	if call.err == nil {
		inserted = s.insertLocked(key, call.p)
		switch src {
		case srcCold:
			s.stats.RestoreHits++
		case srcWarm:
			s.stats.Promotions++
		default:
			s.stats.Personalizations++
		}
	}
	delete(s.inflight, key)
	s.stats.InFlight = len(s.inflight)
	s.mu.Unlock()
	close(call.done)
	if call.err == nil {
		if !inserted {
			// Lost an insert race (e.g. a concurrent Restore): the cached
			// entry wins; this copy gives its shared references back. It
			// stays fully serveable for the joined callers holding it.
			call.p.release()
		}
		s.rebalance()
		if src == srcPruned && s.store != nil {
			s.scheduleSnapshot(call.p)
		}
	}
	return call.p, false, call.err
}

// insertLocked adds p to the hot tier and reports whether p was actually
// inserted. It never evicts — callers run rebalance (outside mu) after the
// insert to enforce the count/byte bounds, so demotion work stays off the
// lock. A key that is already cached (a Restore racing a concurrent
// personalization) keeps the existing entry and reports false; the caller
// owns the loser's cleanup.
func (s *Server) insertLocked(key string, p *Personalization) bool {
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		s.stats.CachedEngines = s.lru.Len()
		return false
	}
	s.entries[key] = s.lru.PushFront(p)
	s.hotBytes += p.size
	s.stats.CachedEngines = s.lru.Len()
	s.stats.HotBytes = s.hotBytes
	return true
}

// personalizeSource reports how a cache miss was resolved: a fresh pruning
// run, a cold-tier disk restore, or a warm-tier promotion.
type personalizeSource int

const (
	srcPruned personalizeSource = iota
	srcCold
	srcWarm
)

// personalize is the cache-miss path, run on a pool worker. It resolves the
// tenant from the cheapest tier that has it: a warm delta record promotes
// without touching disk or the pruner; a cold snapshot restores from disk;
// only a tenant known to no tier pays for a fresh pruning run. Failures
// cascade downward — a bad warm record or disk record must not take the
// request down, it falls through to the next tier.
func (s *Server) personalize(classes []int, key string) (*Personalization, personalizeSource, error) {
	if we := s.takeWarm(key); we != nil {
		p, err := s.promoteWarm(we)
		if err == nil {
			return p, srcWarm, nil
		}
		s.mu.Lock()
		s.stats.PromoteErrors++
		s.mu.Unlock()
	}
	if s.store != nil && !s.store.has(key) {
		// Shards can share one snapshot store: a record another shard wrote
		// after this store opened is on disk but not in the in-memory index
		// yet. Re-reading the index before paying for a pruning run is what
		// lets a surviving shard adopt a dead shard's tenants by restore —
		// a failed refresh only costs the shortcut, never the request.
		_ = s.store.refresh()
	}
	if s.store != nil && s.store.has(key) {
		p, err := s.restoreOne(key)
		if err == nil {
			return p, srcCold, nil
		}
		// A bad record must not take the request down: count it and fall
		// through to a fresh pruning run (which re-snapshots over it).
		s.mu.Lock()
		s.stats.RestoreErrors++
		s.mu.Unlock()
	}
	clone := s.build()
	s.base.CloneWeightsTo(clone)
	train := s.ds.MakeSplit("serve-train/"+key, classes, s.opts.TrainPerClass)
	test := s.ds.MakeSplit("serve-test/"+key, classes, s.opts.TestPerClass)
	rep := pruner.NewCRISP(s.opts.Prune).Prune(clone, train)
	eng, agreement, err := s.compileEngine(clone, key, func() data.Split { return test })
	if err != nil {
		return nil, srcPruned, err
	}
	if s.store != nil {
		// Register the write-behind snapshot here, inside the job, so it
		// is counted before the job itself retires — Personalize balances
		// this via scheduleSnapshot's pendingDone.
		s.pendingAdd(&s.pendingSnaps)
	}
	acc := clone.Accuracy(test.X, test.Labels)
	return s.newPersonalization(key, classes, rep, acc, agreement, eng, clone), srcPruned, nil
}

// compileEngine builds the serving engine for a personalized clone at the
// server's precision. At Int8 it also compiles the float reference engine
// (once, at personalization time — never on the predict path) and measures
// top-1 agreement over the held-out split, feeding the per-tenant
// Agreement field and the aggregate Stats counters; at Float32 the engine
// is the reference and agreement is trivially 1. The split is requested
// through a thunk so callers that don't already have one (the restore
// path) only synthesize it when the precision actually needs it.
func (s *Server) compileEngine(clone *nn.Classifier, key string, testSplit func() data.Split) (*inference.Engine, float64, error) {
	eng, err := s.newEngine(clone, key)
	if err != nil {
		return nil, 0, err
	}
	if s.opts.Precision != inference.Int8 {
		return eng, 1, nil
	}
	// The throwaway reference engine binds the shared slabs (free memory
	// win) but never joins the registry: it is dropped right after the
	// measurement and would otherwise leak its plan references.
	bs, nm := s.opts.Prune.BlockSize, s.opts.Prune.NM
	ref, err := inference.NewWithOptions(clone, bs, nm, inference.CompileOptions{Shared: s.shared})
	if err != nil {
		eng.Release()
		return nil, 0, fmt.Errorf("serve: compiling reference engine for {%s}: %w", key, err)
	}
	test := testSplit()
	want := ref.Predict(test.X)
	got := eng.Predict(test.X)
	matches := 0
	for i := range want {
		if got[i] == want[i] {
			matches++
		}
	}
	s.mu.Lock()
	s.stats.AgreementSamples += uint64(len(want))
	s.stats.AgreementMatches += uint64(matches)
	s.mu.Unlock()
	return eng, float64(matches) / float64(len(want)), nil
}

// Predict personalizes (or fetches) the engine for the class set and runs
// a sparse forward pass over x ([B,C,H,W]), returning the predicted class
// ids. With batching enabled (Options.MaxBatch > 1) concurrent Predict
// calls against the same personalization coalesce into shared engine
// invocations — results are bit-identical to the solo path — and a full
// queue rejects with ErrOverloaded instead of queueing unboundedly.
func (s *Server) Predict(classes []int, x *tensor.Tensor) ([]int, error) {
	// Validate the input first: a malformed tensor must not trigger a
	// pruning job, let alone poison a shared batch.
	if err := s.checkInput(x); err != nil {
		return nil, err
	}
	// The hot path — an already-canonical class set with a cached engine —
	// skips Canonicalize's map/join allocations entirely; anything else
	// (unsorted sets, duplicates, cache misses) takes the full path. A miss
	// resolves on the predict pool lane, so a backlog of explicit
	// personalizations can never starve it of workers.
	p := s.predictFast(classes)
	if p == nil {
		var err error
		p, _, err = s.personalizeLane(classes, LanePredict, nil)
		if err != nil {
			return nil, err
		}
	}
	// Weighted shedding: charge the tenant's token bucket one token per
	// sample at its class rate. An over-quota tenant is only shed while the
	// server-wide predict queue is past the watermark — quotas shape load
	// under pressure, they do not cap an idle server — and the drop singles
	// out that tenant (ErrOverQuota) instead of 429ing everyone. Compliant
	// tenants still hit the per-queue hard bound (ErrOverloaded) last.
	class := p.QoS()
	var deadline time.Time
	if !s.qos.disabled {
		pol := s.qos.policy(class)
		if !p.bucket.take(float64(x.Shape[0]), pol.QuotaRPS, pol.QuotaBurst, time.Now()) &&
			int(s.counters.queued.Load()) >= s.qos.shedAt {
			s.counters.shed[class].Add(1)
			return nil, fmt.Errorf("%w (tenant {%s}, class %s)", ErrOverQuota, p.Key, class)
		}
		if pol.LatencyBudget > 0 {
			deadline = time.Now().Add(pol.LatencyBudget)
		}
	}
	if p.bat != nil {
		return p.bat.submit(x, class, deadline)
	}
	start := time.Now()
	preds := p.engine.Predict(x)
	s.counters.observe(len(preds), time.Since(start))
	return preds, nil
}

// predictFast returns the cached personalization for an already-canonical
// (strictly increasing, in-range) class set, or nil when the set is
// non-canonical or not cached — the callers' slow path handles both. It is
// allocation-free: the cache key is composed in a stack buffer and looked
// up without materializing a string, and the usual Personalize bookkeeping
// (Requests, CacheHits, LRU touch) still happens under mu.
func (s *Server) predictFast(classes []int) *Personalization {
	if len(classes) == 0 {
		return nil
	}
	var buf [96]byte
	key := buf[:0]
	prev := -1
	for i, c := range classes {
		if c <= prev || c >= s.ds.NumClasses {
			return nil
		}
		prev = c
		if i > 0 {
			key = append(key, ',')
		}
		key = strconv.AppendInt(key, int64(c), 10)
	}
	s.mu.Lock()
	el, ok := s.entries[string(key)]
	if !ok {
		s.mu.Unlock()
		return nil
	}
	s.lru.MoveToFront(el)
	s.stats.Requests++
	s.stats.CacheHits++
	p := el.Value.(*Personalization)
	s.mu.Unlock()
	return p
}

// DrainBatches kicks every queued predict batch to flush immediately
// instead of letting the leaders wait out their linger, so lingering
// batches never delay a shutdown. The flushes run on the leader
// goroutines and may still be in flight when DrainBatches returns: the
// waiting Predict callers receive their results as usual, so a shutdown
// path that must see them out should wait on those callers (e.g.
// http.Server.Shutdown draining its handlers) after calling this.
// Requests queued after the drain batch normally.
func (s *Server) DrainBatches() {
	s.mu.Lock()
	bats := make([]*batcher, 0, s.lru.Len())
	for _, el := range s.entries {
		if b := el.Value.(*Personalization).bat; b != nil {
			bats = append(bats, b)
		}
	}
	s.mu.Unlock()
	for _, b := range bats {
		b.forceFlush()
	}
}

// checkInput validates a predict batch against the dataset shape before it
// can reach an engine — essential with batching, where one malformed tensor
// concatenated into a shared batch would fail every rider's request.
func (s *Server) checkInput(x *tensor.Tensor) error {
	if x == nil || len(x.Shape) != 4 || x.Shape[0] < 1 {
		return errors.New("serve: predict input must be [B,C,H,W] with B >= 1")
	}
	if x.Shape[1] != s.ds.Channels || x.Shape[2] != s.ds.H || x.Shape[3] != s.ds.W {
		return fmt.Errorf("serve: predict input shape %v, want [B,%d,%d,%d]",
			x.Shape, s.ds.Channels, s.ds.H, s.ds.W)
	}
	return nil
}

// PredictSamples synthesizes n fresh samples of the class set, predicts
// them in one batch, and returns predictions, labels and accuracy — the
// self-contained demo path behind crisp-serve's /predict.
func (s *Server) PredictSamples(classes []int, n int) (preds, labels []int, acc float64, err error) {
	canon, key, err := s.Canonicalize(classes)
	if err != nil {
		return nil, nil, 0, err
	}
	if n <= 0 {
		n = 1
	}
	k := len(canon)
	per := (n + k - 1) / k
	split := s.ds.MakeSplit("serve-predict/"+key, canon, per)
	// The split is grouped per class (per rows each); pick round-robin
	// across the groups so every class of the set is represented.
	idx := make([]int, 0, n)
	for i := 0; i < n; i++ {
		idx = append(idx, (i%k)*per+i/k)
	}
	sub := split.Subset(idx)
	preds, err = s.Predict(canon, sub.X)
	if err != nil {
		return nil, nil, 0, err
	}
	correct := 0
	for i, p := range preds {
		if p == sub.Labels[i] {
			correct++
		}
	}
	return preds, sub.Labels, float64(correct) / float64(len(preds)), nil
}

// Stats returns a snapshot of the server counters: the mu-guarded
// control-plane counters merged with the atomic predict-path counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	st.PredictBatches = s.counters.batches.Load()
	st.SamplesPredicted = s.counters.samples.Load()
	st.Rejected = s.counters.rejected.Load()
	st.FlushSize = s.counters.flushSize.Load()
	st.FlushLinger = s.counters.flushLinger.Load()
	st.FlushForced = s.counters.flushForced.Load()
	st.FlushDeadline = s.counters.flushDeadline.Load()
	st.ShedByClass = make(map[string]uint64, NumQoSClasses)
	st.QueueWait = make(map[string]QueueWaitStats, NumQoSClasses)
	for c := QoSClass(0); c < NumQoSClasses; c++ {
		st.ShedByClass[c.String()] = s.counters.shed[c].Load()
		var qw QueueWaitStats
		for i := range qw.Hist {
			qw.Hist[i] = s.counters.qwHist[c][i].Load()
		}
		qw.SumNS = s.counters.qwNS[c].Load()
		qw.Count = s.counters.qwCount[c].Load()
		st.QueueWait[c.String()] = qw
	}
	st.PredictNS = s.counters.latencyNS.Load()
	st.QueueDepth = int(s.counters.queued.Load())
	for i := range st.BatchSizeHist {
		st.BatchSizeHist[i] = s.counters.hist[i].Load()
	}
	st.Top1Agreement = 1
	if st.AgreementSamples > 0 {
		st.Top1Agreement = float64(st.AgreementMatches) / float64(st.AgreementSamples)
	}
	if s.store != nil {
		st.ColdRecords = s.store.count()
	}
	st.SharedPlans, st.SharedPlanRefs, st.SharedPlanBytes = s.registry.Stats()
	return st
}
