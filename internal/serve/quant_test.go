package serve

import (
	"sync"
	"testing"

	"repro/internal/inference"
)

// int8Opts is quickOpts at Int8 precision.
func int8Opts() Options {
	opts := quickOpts()
	opts.Precision = inference.Int8
	return opts
}

// TestInt8ServerEndToEnd: an Int8 server personalizes, serves predictions
// through the quantized engines, and reports the precision and measured
// agreement telemetry.
func TestInt8ServerEndToEnd(t *testing.T) {
	s := newTestServer(t, int8Opts())
	p, cached, err := s.Personalize([]int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first personalization cannot be cached")
	}
	if p.Engine().Precision() != inference.Int8 {
		t.Fatalf("engine precision %v, want int8", p.Engine().Precision())
	}
	if p.Engine().QuantSignature() == 0 {
		t.Fatal("int8 engine has no quantized plans")
	}
	if p.Agreement <= 0 || p.Agreement > 1 {
		t.Fatalf("agreement %v outside (0, 1]", p.Agreement)
	}
	preds, _, _, err := s.PredictSamples([]int{1, 3}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 8 {
		t.Fatalf("%d predictions, want 8", len(preds))
	}
	st := s.Stats()
	if st.Precision != "int8" {
		t.Fatalf("stats precision %q, want int8", st.Precision)
	}
	if st.AgreementSamples == 0 || st.AgreementMatches > st.AgreementSamples {
		t.Fatalf("agreement accounting: %d/%d", st.AgreementMatches, st.AgreementSamples)
	}
	if st.Top1Agreement != float64(st.AgreementMatches)/float64(st.AgreementSamples) {
		t.Fatalf("Top1Agreement %v inconsistent with %d/%d", st.Top1Agreement, st.AgreementMatches, st.AgreementSamples)
	}
	t.Logf("int8 top-1 agreement: %d/%d (%.1f%%)", st.AgreementMatches, st.AgreementSamples, 100*st.Top1Agreement)

	// A float server reports the trivial telemetry.
	fs := newTestServer(t, quickOpts())
	fp, _, err := fs.Personalize([]int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if fp.Agreement != 1 || fp.Engine().Precision() != inference.Float32 || fp.Engine().QuantSignature() != 0 {
		t.Fatalf("float personalization: agreement %v precision %v sig %x",
			fp.Agreement, fp.Engine().Precision(), fp.Engine().QuantSignature())
	}
	if fst := fs.Stats(); fst.Precision != "float32" || fst.AgreementSamples != 0 || fst.Top1Agreement != 1 {
		t.Fatalf("float server stats: %+v", fst)
	}
}

// TestInt8RestoreRequantizesDeterministically is the quantized half of the
// warm-restart contract: snapshot records persist float weights and masks
// only, so a restart re-quantizes from scratch — and must land on exactly
// the pre-restart codes (equal QuantSignatures) and therefore bit-identical
// quantized predictions.
func TestInt8RestoreRequantizesDeterministically(t *testing.T) {
	opts, _ := snapshotOpts(t)
	opts.Precision = inference.Int8
	env := sharedEnv()
	sets := [][]int{{1, 3}, {0, 2, 4}}

	s1 := newTestServer(t, opts)
	sigs := map[string]uint64{}
	logits := map[string][]float64{}
	agreements := map[string]float64{}
	for _, set := range sets {
		p, _, err := s1.Personalize(set)
		if err != nil {
			t.Fatal(err)
		}
		if sig := p.Engine().QuantSignature(); sig == 0 {
			t.Fatalf("set %v: no quantized plans", set)
		} else {
			sigs[p.Key] = sig
		}
		x := env.ds.MakeSplit("q-probe/"+p.Key, set, 2).X
		logits[p.Key] = append([]float64(nil), p.Engine().Logits(x).Data...)
		agreements[p.Key] = p.Agreement
	}
	if _, err := s1.Flush(); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, opts)
	n, err := s2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(sets) {
		t.Fatalf("restored %d of %d", n, len(sets))
	}
	if st := s2.Stats(); st.Personalizations != 0 {
		t.Fatalf("restore ran %d pruning jobs", st.Personalizations)
	}
	for _, set := range sets {
		p, cached, err := s2.Personalize(set)
		if err != nil {
			t.Fatal(err)
		}
		if !cached {
			t.Fatalf("set %v not restored into the cache", set)
		}
		if got := p.Engine().QuantSignature(); got != sigs[p.Key] {
			t.Fatalf("set %v: re-quantization diverged: signature %x, pre-restart %x", set, got, sigs[p.Key])
		}
		if p.Agreement != agreements[p.Key] {
			t.Fatalf("set %v: restored agreement %v, pre-restart %v", set, p.Agreement, agreements[p.Key])
		}
		x := env.ds.MakeSplit("q-probe/"+p.Key, set, 2).X
		got := p.Engine().Logits(x).Data
		for j, v := range got {
			if v != logits[p.Key][j] {
				t.Fatalf("set %v logit %d diverged after requantizing restart: %v vs %v",
					set, j, v, logits[p.Key][j])
			}
		}
	}
}

// TestMixedPrecisionServingStorm is the -race hammer for precision
// coexistence: a Float32 server and an Int8 server run concurrently in one
// process — sharing the package-level kernel worker pool, request pools and
// arenas' sync.Pools — under mixed Personalize/Predict/Restore/Flush
// traffic with tiny caches (constant evictions). Afterwards the int8 side
// must still re-quantize deterministically: a third server restoring the
// int8 snapshot directory reproduces every engine's QuantSignature.
func TestMixedPrecisionServingStorm(t *testing.T) {
	fOpts, _ := snapshotOpts(t)
	fOpts.CacheSize = 2
	qOpts, qDir := snapshotOpts(t)
	qOpts.CacheSize = 2
	qOpts.Precision = inference.Int8
	fsrv := newTestServer(t, fOpts)
	qsrv := newTestServer(t, qOpts)

	sets := [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	const clients = 8 // even: half float, half int8
	const rounds = 3
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			s := fsrv
			if c%2 == 1 {
				s = qsrv
			}
			for r := 0; r < rounds; r++ {
				classes := sets[(c/2+r)%len(sets)]
				switch (c + r) % 4 {
				case 0:
					if _, _, err := s.Personalize(classes); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, _, _, err := s.PredictSamples(classes, 4); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if _, err := s.Restore(); err != nil {
						t.Error(err)
						return
					}
				default:
					if _, err := s.Flush(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	if _, err := qsrv.Flush(); err != nil {
		t.Fatal(err)
	}

	// Every float engine stayed float, every int8 engine stayed quantized.
	if st := fsrv.Stats(); st.Precision != "float32" || st.AgreementSamples != 0 {
		t.Fatalf("float server stats after storm: %+v", st)
	}
	qst := qsrv.Stats()
	if qst.Precision != "int8" || qst.AgreementSamples == 0 {
		t.Fatalf("int8 server stats after storm: %+v", qst)
	}

	// Deterministic re-quantization survives the chaos: a fresh server on
	// the int8 snapshot dir reproduces the exact quantized state.
	restoreOpts := qOpts
	restoreOpts.SnapshotDir = qDir
	restoreOpts.CacheSize = len(sets)
	s3 := newTestServer(t, restoreOpts)
	if _, err := s3.Restore(); err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, set := range sets {
		p1, _, err := qsrv.Personalize(set)
		if err != nil {
			t.Fatal(err)
		}
		p2, _, err := s3.Personalize(set)
		if err != nil {
			t.Fatal(err)
		}
		s1, s2 := p1.Engine().QuantSignature(), p2.Engine().QuantSignature()
		if s1 == 0 || s2 == 0 {
			t.Fatalf("set %v: missing quantized plans (%x, %x)", set, s1, s2)
		}
		if s1 != s2 {
			t.Fatalf("set %v: quant signature %x before restart, %x after", set, s1, s2)
		}
		checked++
	}
	if checked != len(sets) {
		t.Fatalf("checked %d of %d sets", checked, len(sets))
	}
}
