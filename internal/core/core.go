// Package core implements the paper's primary contribution in its purest
// form: construction of the CRISP hybrid structured sparsity mask. Given
// per-layer importance scores, it (a) writes fine-grained N:M masks along
// the reduction dimension, (b) scores B×B blocks by surviving importance,
// (c) aggregates per-row sorted block scores into rank columns (Algorithm 1
// lines 5–7), and (d) greedily prunes globally ranked rank columns until a
// target sparsity is met (lines 8–10) — preserving the uniform
// blocks-per-row invariant the CRISP-STC hardware requires.
//
// The package operates on plain tensors only; internal/pruner layers the
// training loop (fine-tuning, saliency estimation, schedules) on top.
package core

import (
	"fmt"
	"sort"

	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// Config parameterizes hybrid mask construction.
type Config struct {
	// NM is the fine-grained pattern. Use N == M (e.g. {1,1}) to disable
	// N:M sparsity and obtain pure balanced block pruning.
	NM sparsity.NM
	// BlockSize is the coarse block edge B.
	BlockSize int
	// MinKeepBlockCols floors the kept rank columns per layer (≥1 guards
	// against layer collapse).
	MinKeepBlockCols int
}

// Validate rejects malformed configurations.
func (c Config) Validate() error {
	if err := c.NM.Validate(); err != nil {
		return err
	}
	if c.BlockSize <= 0 {
		return fmt.Errorf("core: non-positive block size %d", c.BlockSize)
	}
	if c.MinKeepBlockCols < 1 {
		return fmt.Errorf("core: MinKeepBlockCols %d must be ≥1", c.MinKeepBlockCols)
	}
	return nil
}

// Layer is one prunable weight matrix in the global pool. Mask is written
// in place; Scores provides the (non-negative) importance of each element.
type Layer struct {
	// ID names the layer in diagnostics.
	ID string
	// Mask is the rows×cols {0,1} mask, rewritten by ApplyHybrid.
	Mask *tensor.Tensor
	// Scores is the rows×cols importance tensor (e.g. the class-aware
	// saliency score).
	Scores *tensor.Tensor
	// BlockExempt restricts the layer to N:M pruning only (e.g. tiny
	// depthwise kernels).
	BlockExempt bool
}

// candidate is one (layer, rank) pruning unit in the global pool.
type candidate struct {
	layer *Layer
	grid  sparsity.BlockGrid
	rc    sparsity.RankColumn
	cost  int
}

// ApplyHybrid rewrites every layer's mask with the hybrid pattern and
// prunes rank columns globally until the overall sparsity reaches kappa
// (or the candidate pool is exhausted). It returns the achieved sparsity.
//
// Both invariants hold on return for every non-exempt layer: VerifyNM and
// VerifyRowBalance succeed (property-tested in core_test.go).
func ApplyHybrid(layers []*Layer, cfg Config, kappa float64) float64 {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	total, nonzero := 0, 0
	var cands []candidate
	for _, l := range layers {
		rows, cols := l.Mask.Shape[0], l.Mask.Shape[1]
		// Line 2 of Algorithm 1: fine-grained N:M from the scores.
		sparsity.ApplyNM(l.Mask, l.Scores, cfg.NM)
		total += l.Mask.Len()
		nonzero += l.Mask.CountNonZero()
		if l.BlockExempt {
			continue
		}
		g := sparsity.NewBlockGrid(rows, cols, cfg.BlockSize)
		if g.GridCols() <= cfg.MinKeepBlockCols {
			continue
		}
		// Line 5: block scores over the surviving (post-N:M) importance.
		masked := tensor.Mul(l.Scores, l.Mask)
		bs := sparsity.BlockScores(masked, g)
		// Lines 6–7: per-row ascending sort and rank aggregation.
		rcs := sparsity.RankColumns(bs)
		for i := 0; i < len(rcs)-cfg.MinKeepBlockCols; i++ {
			cands = append(cands, candidate{
				layer: l,
				grid:  g,
				rc:    rcs[i],
				cost:  rankCost(l.Mask, g, rcs[i]),
			})
		}
	}
	if total == 0 {
		return 0
	}
	// Line 8: global ascending ranking. Rank scores are monotone within a
	// layer, so a stable sort preserves the required prefix order.
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].rc.Score < cands[b].rc.Score })

	// Lines 9–10: greedy selection until the sparsity target.
	targetNonzero := int((1 - kappa) * float64(total))
	for _, cd := range cands {
		if nonzero <= targetNonzero {
			break
		}
		sparsity.PruneRankColumn(cd.layer.Mask, cd.grid, cd.rc)
		nonzero -= cd.cost
	}
	return 1 - float64(nonzero)/float64(total)
}

// rankCost counts the non-zero mask entries a rank column would remove.
func rankCost(mask *tensor.Tensor, g sparsity.BlockGrid, rc sparsity.RankColumn) int {
	cols := mask.Shape[1]
	cost := 0
	for br, bc := range rc.BlockCols {
		r0, r1, c0, c1 := g.Bounds(br, bc)
		for r := r0; r < r1; r++ {
			for cc := c0; cc < c1; cc++ {
				if mask.Data[r*cols+cc] != 0 {
					cost++
				}
			}
		}
	}
	return cost
}

// GlobalSparsity measures the zero fraction across the layers' masks.
func GlobalSparsity(layers []*Layer) float64 {
	total, nonzero := 0, 0
	for _, l := range layers {
		total += l.Mask.Len()
		nonzero += l.Mask.CountNonZero()
	}
	if total == 0 {
		return 0
	}
	return 1 - float64(nonzero)/float64(total)
}
