package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparsity"
	"repro/internal/tensor"
)

// mkLayer builds a dense layer with positive random scores.
func mkLayer(rng *rand.Rand, id string, rows, cols int, exempt bool) *Layer {
	scores := tensor.New(rows, cols)
	for i := range scores.Data {
		scores.Data[i] = math.Abs(rng.NormFloat64()) + 1e-3
	}
	return &Layer{
		ID:          id,
		Mask:        tensor.Full(1, rows, cols),
		Scores:      scores,
		BlockExempt: exempt,
	}
}

func defaultCfg() Config {
	return Config{NM: sparsity.NM{N: 2, M: 4}, BlockSize: 4, MinKeepBlockCols: 1}
}

func TestConfigValidate(t *testing.T) {
	if err := defaultCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{NM: sparsity.NM{N: 0, M: 4}, BlockSize: 4, MinKeepBlockCols: 1},
		{NM: sparsity.NM{N: 2, M: 4}, BlockSize: 0, MinKeepBlockCols: 1},
		{NM: sparsity.NM{N: 2, M: 4}, BlockSize: 4, MinKeepBlockCols: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestApplyHybridReachesTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	layers := []*Layer{
		mkLayer(rng, "a", 16, 32, false),
		mkLayer(rng, "b", 8, 24, false),
		mkLayer(rng, "c", 32, 16, false),
	}
	got := ApplyHybrid(layers, defaultCfg(), 0.85)
	if got < 0.82 || got > 0.90 {
		t.Fatalf("achieved sparsity %v, want ≈0.85", got)
	}
	if m := GlobalSparsity(layers); math.Abs(m-got) > 1e-12 {
		t.Fatalf("reported %v but measured %v", got, m)
	}
}

func TestApplyHybridInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := defaultCfg()
	layers := []*Layer{
		mkLayer(rng, "a", 16, 32, false),
		mkLayer(rng, "dw", 8, 9, true), // exempt, ragged cols
	}
	ApplyHybrid(layers, cfg, 0.8)
	for _, l := range layers {
		if err := sparsity.VerifyNM(l.Mask, cfg.NM); err != nil {
			t.Fatalf("%s: %v", l.ID, err)
		}
		if l.BlockExempt {
			continue
		}
		g := sparsity.NewBlockGrid(l.Mask.Shape[0], l.Mask.Shape[1], cfg.BlockSize)
		if err := sparsity.VerifyRowBalance(l.Mask, g); err != nil {
			t.Fatalf("%s: %v", l.ID, err)
		}
		counts := sparsity.KeptBlocksPerRow(l.Mask, g)
		for _, c := range counts {
			if c < cfg.MinKeepBlockCols {
				t.Fatalf("%s: row kept %d < floor %d", l.ID, c, cfg.MinKeepBlockCols)
			}
		}
	}
}

func TestApplyHybridKappaBelowNMFloorIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	layers := []*Layer{mkLayer(rng, "a", 8, 16, false)}
	got := ApplyHybrid(layers, defaultCfg(), 0.3) // below the 0.5 N:M floor
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("sparsity %v, want exactly the N:M floor 0.5", got)
	}
}

func TestApplyHybridPrunesLeastImportantFirst(t *testing.T) {
	// Layer "cheap" has tiny scores; "precious" has huge scores. Block
	// pruning beyond the N:M floor must hit "cheap" first.
	rng := rand.New(rand.NewSource(4))
	cheap := mkLayer(rng, "cheap", 8, 16, false)
	precious := mkLayer(rng, "precious", 8, 16, false)
	for i := range precious.Scores.Data {
		precious.Scores.Data[i] += 1000
	}
	ApplyHybrid([]*Layer{cheap, precious}, defaultCfg(), 0.6)
	sc := 1 - float64(cheap.Mask.CountNonZero())/float64(cheap.Mask.Len())
	sp := 1 - float64(precious.Mask.CountNonZero())/float64(precious.Mask.Len())
	if sc <= sp {
		t.Fatalf("cheap layer sparsity %v should exceed precious %v", sc, sp)
	}
}

func TestApplyHybridRevivesMaskedWeights(t *testing.T) {
	// Pre-masked entries with top scores must return under the fresh mask
	// (the straight-through revival mechanism).
	rng := rand.New(rand.NewSource(5))
	l := mkLayer(rng, "a", 4, 8, false)
	l.Mask.Zero() // everything pruned before
	for i := range l.Scores.Data {
		l.Scores.Data[i] = float64(i + 1) // deterministic ranking
	}
	ApplyHybrid([]*Layer{l}, defaultCfg(), 0.5)
	if l.Mask.CountNonZero() == 0 {
		t.Fatal("mask not recomputed from scratch")
	}
}

func TestApplyHybridEmpty(t *testing.T) {
	if got := ApplyHybrid(nil, defaultCfg(), 0.9); got != 0 {
		t.Fatalf("empty pool sparsity %v", got)
	}
}

func TestBlockOnlyVia11Pattern(t *testing.T) {
	// NM{1,1} keeps everything → pure balanced block pruning.
	rng := rand.New(rand.NewSource(6))
	cfg := Config{NM: sparsity.NM{N: 1, M: 1}, BlockSize: 4, MinKeepBlockCols: 1}
	layers := []*Layer{mkLayer(rng, "a", 16, 32, false)}
	got := ApplyHybrid(layers, cfg, 0.5)
	if math.Abs(got-0.5) > 0.13 {
		t.Fatalf("block-only sparsity %v, want ≈0.5", got)
	}
	g := sparsity.NewBlockGrid(16, 32, 4)
	if err := sparsity.VerifyRowBalance(layers[0].Mask, g); err != nil {
		t.Fatal(err)
	}
}

// Property: for random layer pools, targets and patterns, ApplyHybrid
// always (a) reaches within one rank-column of the target or exhausts the
// pool, (b) keeps both invariants, (c) never violates the per-layer floor.
func TestApplyHybridProperty(t *testing.T) {
	f := func(seed int64, kappaRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nm := sparsity.NM{N: int(nRaw)%3 + 1, M: 4}
		cfg := Config{NM: nm, BlockSize: 4, MinKeepBlockCols: 1}
		kappa := 0.5 + float64(kappaRaw%45)/100.0 // 0.50..0.94
		layers := []*Layer{
			mkLayer(rng, "a", 8, 16, false),
			mkLayer(rng, "b", 12, 20, false),
			mkLayer(rng, "c", 4, 9, true),
		}
		ApplyHybrid(layers, cfg, kappa)
		for _, l := range layers {
			if sparsity.VerifyNM(l.Mask, nm) != nil {
				return false
			}
			if l.BlockExempt {
				continue
			}
			g := sparsity.NewBlockGrid(l.Mask.Shape[0], l.Mask.Shape[1], cfg.BlockSize)
			if sparsity.VerifyRowBalance(l.Mask, g) != nil {
				return false
			}
			for _, c := range sparsity.KeptBlocksPerRow(l.Mask, g) {
				if c < 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: higher kappa never yields lower sparsity on the same pool.
func TestApplyHybridMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		build := func() []*Layer {
			rng := rand.New(rand.NewSource(seed))
			return []*Layer{mkLayer(rng, "a", 16, 32, false), mkLayer(rng, "b", 8, 24, false)}
		}
		lo := ApplyHybrid(build(), defaultCfg(), 0.6)
		hi := ApplyHybrid(build(), defaultCfg(), 0.9)
		return hi+1e-12 >= lo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
