// Package sloreport defines the machine-readable report cmd/crisp-load
// emits and the SLO baseline cmd/slocheck gates it against. It is a plain
// data package — no serving imports — so the load harness, the checker and
// the CI job all speak the same schema without a dependency cycle.
package sloreport

import (
	"fmt"
	"math"
	"sort"
)

// ClassReport aggregates one QoS class's outcomes over a replay run (or,
// for Report.Aggregate, the whole run's).
type ClassReport struct {
	// Requests is every predict attempt of this class; Samples the rows they
	// carried. OK, Shed, Overloaded and Errors partition Requests: served,
	// dropped over-quota (ErrOverQuota → 429), dropped by admission control
	// (ErrOverloaded → 429), and failed any other way.
	Requests   int `json:"requests"`
	Samples    int `json:"samples"`
	OK         int `json:"ok"`
	Shed       int `json:"shed"`
	Overloaded int `json:"overloaded"`
	Errors     int `json:"errors"`
	// Latency percentiles over the OK requests, in milliseconds.
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	MaxMS  float64 `json:"max_ms"`
	MeanMS float64 `json:"mean_ms"`
	// ShedRate is (Shed+Overloaded)/Requests — every 429, whichever limiter
	// produced it.
	ShedRate float64 `json:"shed_rate"`
}

// Summarize fills a ClassReport's latency fields from the OK-request
// latencies (milliseconds) and derives ShedRate. lat is sorted in place.
func (c *ClassReport) Summarize(lat []float64) {
	sort.Float64s(lat)
	c.P50MS = Percentile(lat, 0.50)
	c.P90MS = Percentile(lat, 0.90)
	c.P99MS = Percentile(lat, 0.99)
	c.P999MS = Percentile(lat, 0.999)
	if n := len(lat); n > 0 {
		c.MaxMS = lat[n-1]
		sum := 0.0
		for _, v := range lat {
			sum += v
		}
		c.MeanMS = sum / float64(n)
	}
	if c.Requests > 0 {
		c.ShedRate = float64(c.Shed+c.Overloaded) / float64(c.Requests)
	}
}

// Percentile returns the p-quantile (p in [0,1]) of an ascending-sorted
// slice using nearest-rank, 0 when empty.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return sorted[i]
}

// Report is crisp-load's machine-readable output: the run configuration
// echoed back (so a report is self-describing), per-class and aggregate
// outcome summaries, and the server-counter deltas that explain them.
type Report struct {
	// Config echo.
	Seed       int64   `json:"seed"`
	TargetRPS  float64 `json:"target_rps"`
	Duration   float64 `json:"duration_sec"`
	Tenants    int     `json:"tenants"`
	ZipfS      float64 `json:"zipf_s"`
	QoS        bool    `json:"qos"` // false: FIFO baseline run (-fifo)
	Precisions string  `json:"precisions"`

	// Outcomes.
	Classes   map[string]*ClassReport `json:"classes"`
	Aggregate ClassReport             `json:"aggregate"`
	// GoodputRPS is served requests per wall second — the number that must
	// not regress when QoS is on versus the FIFO baseline.
	GoodputRPS float64 `json:"goodput_rps"`
	// AchievedRPS is offered (sent) requests per wall second; well below
	// TargetRPS means the harness itself could not keep up and latency
	// numbers are suspect.
	AchievedRPS float64 `json:"achieved_rps"`

	// Server-counter deltas summed across the fleet for the run window.
	FlushSize     uint64 `json:"flush_size"`
	FlushLinger   uint64 `json:"flush_linger"`
	FlushDeadline uint64 `json:"flush_deadline"`
	FlushForced   uint64 `json:"flush_forced"`
}

// SLO is one class's acceptance thresholds; zero fields are unchecked, so a
// baseline only pins the dimensions it cares about.
type SLO struct {
	MaxP50MS    float64 `json:"max_p50_ms,omitempty"`
	MaxP99MS    float64 `json:"max_p99_ms,omitempty"`
	MaxP999MS   float64 `json:"max_p999_ms,omitempty"`
	MaxShedRate float64 `json:"max_shed_rate,omitempty"`
	// MinRequests guards the percentiles against vacuous passes: a run that
	// served fewer OK requests than this fails (a misconfigured harness
	// sheds everything and would otherwise sail through with p99 = 0).
	MinRequests int `json:"min_requests,omitempty"`
}

// Baseline is the checked-in SLO_baseline.json: per-class thresholds plus
// run-wide floors.
type Baseline struct {
	// Classes maps QoS class names ("gold", "standard", "batch",
	// "aggregate") to their thresholds.
	Classes map[string]SLO `json:"classes"`
	// MinGoodputRPS is the run-wide served-throughput floor.
	MinGoodputRPS float64 `json:"min_goodput_rps,omitempty"`
	// MinAchievedRPSFraction fails the gate when the harness offered less
	// than this fraction of the target rate (the run under-drove the server
	// and its latency numbers mean nothing). Zero: 0.9.
	MinAchievedRPSFraction float64 `json:"min_achieved_rps_fraction,omitempty"`
}

// Check compares a report against the baseline and returns one human-readable
// violation per broken threshold (empty: the run meets its SLOs).
func Check(r *Report, b *Baseline) []string {
	var v []string
	fail := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }

	frac := b.MinAchievedRPSFraction
	if frac == 0 {
		frac = 0.9
	}
	if r.TargetRPS > 0 && r.AchievedRPS < frac*r.TargetRPS {
		fail("harness under-drove the server: achieved %.1f rps of %.1f target (< %.0f%%)",
			r.AchievedRPS, r.TargetRPS, frac*100)
	}
	if b.MinGoodputRPS > 0 && r.GoodputRPS < b.MinGoodputRPS {
		fail("goodput %.1f rps below floor %.1f", r.GoodputRPS, b.MinGoodputRPS)
	}

	// Deterministic order so CI logs diff cleanly.
	names := make([]string, 0, len(b.Classes))
	for name := range b.Classes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		slo := b.Classes[name]
		var cr *ClassReport
		if name == "aggregate" {
			cr = &r.Aggregate
		} else {
			cr = r.Classes[name]
		}
		if cr == nil {
			fail("%s: baseline names a class the report lacks", name)
			continue
		}
		if slo.MinRequests > 0 && cr.OK < slo.MinRequests {
			fail("%s: only %d requests served, baseline needs >= %d for meaningful percentiles",
				name, cr.OK, slo.MinRequests)
		}
		check := func(dim string, got, max float64) {
			if max > 0 && got > max {
				fail("%s: %s %.3f exceeds baseline %.3f", name, dim, got, max)
			}
		}
		check("p50_ms", cr.P50MS, slo.MaxP50MS)
		check("p99_ms", cr.P99MS, slo.MaxP99MS)
		check("p999_ms", cr.P999MS, slo.MaxP999MS)
		check("shed_rate", cr.ShedRate, slo.MaxShedRate)
	}
	return v
}
