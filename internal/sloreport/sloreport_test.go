package sloreport

import (
	"strings"
	"testing"
)

func TestPercentile(t *testing.T) {
	lat := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tests := []struct {
		p    float64
		want float64
	}{
		{0.50, 5}, {0.90, 9}, {0.99, 10}, {0.999, 10}, {0, 1}, {1, 10},
	}
	for _, tc := range tests {
		if got := Percentile(lat, tc.p); got != tc.want {
			t.Errorf("p%g = %g, want %g", tc.p*100, got, tc.want)
		}
	}
	if got := Percentile(nil, 0.99); got != 0 {
		t.Errorf("empty percentile %g, want 0", got)
	}
}

func TestSummarize(t *testing.T) {
	c := ClassReport{Requests: 10, OK: 8, Shed: 1, Overloaded: 1}
	c.Summarize([]float64{8, 1, 2, 3, 4, 5, 6, 7}) // unsorted on purpose
	if c.P50MS != 4 || c.MaxMS != 8 || c.MeanMS != 4.5 {
		t.Fatalf("summary %+v", c)
	}
	if c.ShedRate != 0.2 {
		t.Fatalf("shed rate %g, want 0.2 (shed+overloaded over requests)", c.ShedRate)
	}
}

// passingReport builds a report that satisfies baseline().
func passingReport() *Report {
	gold := &ClassReport{Requests: 500, OK: 500, P50MS: 10, P99MS: 15, P999MS: 20}
	std := &ClassReport{Requests: 500, OK: 500, P50MS: 20, P99MS: 25, P999MS: 30}
	return &Report{
		TargetRPS: 200, AchievedRPS: 199, GoodputRPS: 199,
		Classes:   map[string]*ClassReport{"gold": gold, "standard": std},
		Aggregate: ClassReport{Requests: 1000, OK: 1000, ShedRate: 0},
	}
}

func baseline() *Baseline {
	return &Baseline{
		Classes: map[string]SLO{
			"gold":      {MaxP50MS: 16, MaxP99MS: 40, MaxShedRate: 0.05, MinRequests: 100},
			"aggregate": {MaxShedRate: 0.05, MinRequests: 500},
		},
		MinGoodputRPS: 150,
	}
}

func TestCheckPasses(t *testing.T) {
	if v := Check(passingReport(), baseline()); len(v) != 0 {
		t.Fatalf("clean report violated: %v", v)
	}
}

func TestCheckViolations(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Report)
		want   string
	}{
		{"p50 regression", func(r *Report) { r.Classes["gold"].P50MS = 21 }, "p50_ms"},
		{"p99 regression", func(r *Report) { r.Classes["gold"].P99MS = 50 }, "p99_ms"},
		{"shed regression", func(r *Report) { r.Classes["gold"].ShedRate = 0.5 }, "shed_rate"},
		{"goodput floor", func(r *Report) { r.GoodputRPS = 10 }, "goodput"},
		{"under-driven harness", func(r *Report) { r.AchievedRPS = 50 }, "under-drove"},
		{"vacuous pass guard", func(r *Report) { r.Classes["gold"].OK = 3 }, "meaningful percentiles"},
		{"missing class", func(r *Report) { delete(r.Classes, "gold") }, "report lacks"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			r := passingReport()
			tc.mutate(r)
			v := Check(r, baseline())
			if len(v) == 0 {
				t.Fatal("regression passed the gate")
			}
			found := false
			for _, msg := range v {
				if strings.Contains(msg, tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("violations %v, want one mentioning %q", v, tc.want)
			}
		})
	}
}

// TestCheckZeroFieldsUnchecked: a baseline that pins nothing passes any
// outcome — thresholds are opt-in per dimension.
func TestCheckZeroFieldsUnchecked(t *testing.T) {
	r := passingReport()
	r.Classes["gold"].P99MS = 1e9
	r.GoodputRPS = 0.001
	b := &Baseline{Classes: map[string]SLO{"gold": {}}}
	if v := Check(r, b); len(v) != 0 {
		t.Fatalf("unpinned baseline violated: %v", v)
	}
}
