package accel

import (
	"fmt"
	"math"

	"repro/internal/models"
)

// This file contains the discrete-event tile simulator: where the
// closed-form models in archs.go bound each layer by max(compute, memory),
// TileSim walks the actual tile schedule of a double-buffered
// weight-stationary dataflow — weight/activation tiles stream DRAM→SMEM
// while the compute fabric consumes the previously loaded tile — and
// reports the resulting timeline, the overlap efficiency, and per-resource
// busy fractions. It refines, and is validated against, the closed-form
// model (tilesim_test.go asserts agreement within a small factor).

// TileEvent records one tile's lifetime in cycles.
type TileEvent struct {
	// Index is the tile's sequence number.
	Index int
	// LoadStart/LoadEnd bound the DRAM→SMEM transfer.
	LoadStart, LoadEnd float64
	// ComputeStart/ComputeEnd bound the MAC phase.
	ComputeStart, ComputeEnd float64
	// Bytes is the tile's DRAM traffic; MACs its compute volume.
	Bytes, MACs float64
}

// TileTrace is the complete simulated timeline for one layer.
type TileTrace struct {
	Arch   string
	Layer  string
	Events []TileEvent
	// Cycles is the end-to-end latency (including pipeline drain).
	Cycles float64
	// ComputeBusy and MemBusy are busy-cycle fractions of the total.
	ComputeBusy, MemBusy float64
	// Tiles is the schedule length.
	Tiles int
}

// Utilization returns the compute-busy fraction (0..1).
func (t *TileTrace) Utilization() float64 { return t.ComputeBusy }

// String summarizes the trace.
func (t *TileTrace) String() string {
	return fmt.Sprintf("%s/%s: %d tiles, %.0f cycles, compute %.0f%% busy, memory %.0f%% busy",
		t.Arch, t.Layer, t.Tiles, t.Cycles, 100*t.ComputeBusy, 100*t.MemBusy)
}

// TileSim simulates the double-buffered schedule of a layer on either the
// dense architecture or CRISP-STC (arch "dense" or "crisp-stc").
//
// The GEMM (M×K×N) is tiled along M and K so one weight tile plus its
// activation slice fits half the SMEM (the other half holds the in-flight
// prefetch). Tile i+1's load starts as soon as tile i's load finishes
// (single prefetch buffer); tile i's compute starts when both its load and
// the previous compute are done.
func TileSim(hw HW, arch string, l models.LayerShape, sp Sparsity) (*TileTrace, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	m, k, n := l.GEMMDims()
	var (
		density float64
		actFrac float64
		util    float64
	)
	switch arch {
	case "dense":
		density, actFrac, util = 1, 1, 0.85
	case "crisp-stc":
		density = sp.WeightDensity()
		actFrac = sp.KeptColFrac
		if actFrac == 0 {
			actFrac = 1
		}
		util = 0.95
	default:
		return nil, fmt.Errorf("accel: TileSim supports dense or crisp-stc, not %q", arch)
	}

	// Tile sizing: square-ish K-tiles with full M rows per tile group; the
	// compressed weight tile + its activation slice must fit SMEM/2.
	budget := float64(hw.SMEMBytes) / 2
	tileM := 64
	if tileM > m {
		tileM = m
	}
	tileK := k
	sizeOf := func(tk int) float64 {
		w := float64(tileM) * float64(tk) * density * hw.WeightBytes
		a := float64(tk) * actFrac * float64(min(n, 512)) * hw.ActBytes
		return w + a
	}
	for tileK > 16 && sizeOf(tileK) > budget {
		tileK /= 2
	}

	mTiles := ceilDiv(m, tileM)
	kTiles := ceilDiv(k, tileK)
	total := mTiles * kTiles
	if total == 0 {
		return nil, fmt.Errorf("accel: degenerate tiling for %s", l.Name)
	}

	trace := &TileTrace{Arch: arch, Layer: l.Name, Tiles: total}
	macsPerTile := float64(tileM) * float64(tileK) * float64(n) * density
	computePerTile := macsPerTile / (float64(hw.MACsPerCycle) * util)
	bytesPerTile := sizeOf(tileK)
	loadPerTile := bytesPerTile / hw.DRAMBytesPerCycle

	events, end, computeBusy, memBusy := runSchedule(total, loadPerTile, computePerTile, bytesPerTile, macsPerTile)
	trace.Events = events
	// Output writeback of the final tile group plus pipeline drain.
	outCycles := float64(m*n) * hw.ActBytes / hw.DRAMBytesPerCycle
	trace.Cycles = end + outCycles + hw.StartupCycles
	trace.ComputeBusy = computeBusy / trace.Cycles
	trace.MemBusy = (memBusy + outCycles) / trace.Cycles
	return trace, nil
}

// runSchedule plays the double-buffered load/compute pipeline shared by
// TileSim and the CPU-side tiling cost model (SimulateTiling): tile i+1's
// load starts when tile i's load finishes (single prefetch buffer), tile
// i's compute starts when both its load and the previous compute are done.
// It returns the event timeline, the last compute-end time, and the summed
// busy cycles per resource.
func runSchedule(total int, loadPerTile, computePerTile, bytesPerTile, macsPerTile float64) (events []TileEvent, end, computeBusy, memBusy float64) {
	var prevLoadEnd, prevComputeEnd float64
	for i := 0; i < total; i++ {
		ev := TileEvent{Index: i, Bytes: bytesPerTile, MACs: macsPerTile}
		ev.LoadStart = prevLoadEnd
		ev.LoadEnd = ev.LoadStart + loadPerTile
		ev.ComputeStart = math.Max(ev.LoadEnd, prevComputeEnd)
		ev.ComputeEnd = ev.ComputeStart + computePerTile
		prevLoadEnd = ev.LoadEnd
		prevComputeEnd = ev.ComputeEnd
		computeBusy += computePerTile
		memBusy += loadPerTile
		events = append(events, ev)
	}
	return events, prevComputeEnd, computeBusy, memBusy
}

// ceilDiv is integer ceiling division.
func ceilDiv(a, b int) int { return (a + b - 1) / b }
