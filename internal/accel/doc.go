// doc.go documents the simulator's cost equations (the substitution for
// Sparseloop + CACTI; see DESIGN.md §2).
//
// Every architecture evaluates one layer as an implicit GEMM with
// M = output channels, K = reduction (Cin·kh·kw), N = output positions.
//
//	cycles = max(compute, memory, smem) + overhead + startup
//	compute = effectiveMACs / (MACsPerCycle · utilization)
//	memory  = DRAM bytes / DRAMBytesPerCycle
//	smem    = SMEM bytes / SMEMBytesPerCycle
//	energy  = Σ level bytes · pJ/byte + MACs · pJ/MAC + arch overhead ops
//
// Architecture-specific terms:
//
//   - dense: every MAC executes; weights m·k, activations k·n, outputs m·n
//     all move. Utilization 0.85 (tiling edge effects).
//
//   - nvidia-stc: weight 2:4 only. Patterns with N ≤ 2, M = 4 store at 50%
//     density — 1:4 pads a zero slot per group, so the slot count (and
//     therefore time and compute energy) is identical to 2:4: the ≤2×
//     ceiling and poor-utilization behaviour the paper reports. 3:4 cannot
//     be expressed and runs dense. No block support → full activation
//     traffic.
//
//   - dstc: compute scales with weightDensity · actDensity (dual-side), but
//     (a) gather/scatter throughput is capped (GatherPerCycle), (b) the
//     outer-product SIMD lanes starve when actDensity·N < VectorLanes —
//     exactly the late-layer (N = 49) data-movement wall its own paper
//     describes, and (c) m·n partial sums beyond half the SMEM round-trip
//     to DRAM. Bitmap metadata moves with both operand tensors.
//
//   - crisp-stc: compute scales with (K'/K)·(N/M) at 0.95 utilization
//     (uniform blocks per row ⇒ balanced lanes). Activations of pruned
//     block columns are never fetched (the K'/K factor on k·n traffic —
//     the dominant saving). Metadata: ⌈log2 M⌉ bits per kept slot plus one
//     block-column index per kept block. Each kept block costs
//     BlockOverheadCycles of index/address generation, so small blocks
//     (16×16) pay more overhead than 64×64 — the paper's "block size 64
//     performs best" effect. MUX energy per slot models the activation
//     selection unit.
package accel
