// Package accel is a first-order, tile-level performance and energy
// simulator for the four architectures of the CRISP paper's Fig. 8: a dense
// edge accelerator, NVIDIA's Sparse Tensor Core (weight 2:4 only), the
// Dual-side Sparse Tensor Core (weight + activation sparsity with gather
// machinery), and CRISP-STC (hybrid block + N:M with offset-driven
// activation selection).
//
// The model deliberately captures only the first-order effects the paper
// attributes its results to — see doc.go for the cost equations — and is
// calibrated to reproduce relative behaviour (who wins, by roughly what
// factor, where crossovers fall), not absolute cycle counts of any silicon.
package accel

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/models"
	"repro/internal/sparsity"
)

// HW holds the architecture-independent hardware budget (the paper's
// edge-centric SMEM-RF-Compute topology).
type HW struct {
	// MACsPerCycle is the total MAC throughput (4 tensor cores × 64 MACs).
	MACsPerCycle int
	// SMEMBytes is the shared-memory capacity (256 KB).
	SMEMBytes int
	// L1Bytes is the innermost private cache, used by the CPU-side tiling
	// model to derive cache-block sizes (zero on accelerator configs,
	// whose SMEM is software-managed).
	L1Bytes int
	// SMEMBytesPerCycle is the on-chip bandwidth into the compute fabric.
	SMEMBytesPerCycle float64
	// DRAMBytesPerCycle is the off-chip bandwidth (edge LPDDR-class).
	DRAMBytesPerCycle float64
	// WeightBytes / ActBytes / PsumBytes are operand widths (int8 weights
	// and activations, 32-bit partial sums).
	WeightBytes, ActBytes, PsumBytes float64
	// StartupCycles is the fixed pipeline fill/drain cost per layer.
	StartupCycles float64
	// RFReuse is the register-file reuse factor: how many MACs each SMEM
	// byte feeds on average in a tiled dataflow.
	RFReuse float64
}

// EdgeHW returns the paper's CRISP-STC budget: 256 KB SMEM, four tensor
// cores of 64 MACs each, and a fraction of a discrete GPU's bandwidth.
func EdgeHW() HW {
	return HW{
		MACsPerCycle:      256,
		SMEMBytes:         256 * 1024,
		SMEMBytesPerCycle: 64,
		DRAMBytesPerCycle: 16,
		WeightBytes:       1,
		ActBytes:          1,
		PsumBytes:         4,
		StartupCycles:     2000,
		RFReuse:           16,
	}
}

// Sparsity describes the weight (and optionally activation) sparsity a
// layer runs with.
type Sparsity struct {
	// NM is the fine-grained pattern; the zero value means no N:M sparsity.
	NM sparsity.NM
	// KeptColFrac is K'/K, the fraction of block columns kept (1 = no block
	// pruning).
	KeptColFrac float64
	// BlockSize is the B of the block grid (needed by CRISP-STC).
	BlockSize int
	// ActDensity is the activation non-zero fraction (used by DSTC; the
	// paper reserves 40% activation sparsity → density 0.6).
	ActDensity float64
}

// Dense returns a no-sparsity descriptor.
func Dense() Sparsity { return Sparsity{KeptColFrac: 1, ActDensity: 1} }

// WeightDensity returns the kept weight fraction (K'/K)·(N/M).
func (s Sparsity) WeightDensity() float64 {
	d := s.KeptColFrac
	if d == 0 {
		d = 1
	}
	if s.NM.M > 0 {
		d *= s.NM.Density()
	}
	return d
}

// Validate rejects descriptors the simulator cannot interpret.
func (s Sparsity) Validate() error {
	if s.KeptColFrac < 0 || s.KeptColFrac > 1 {
		return fmt.Errorf("accel: KeptColFrac %v outside [0,1]", s.KeptColFrac)
	}
	if s.NM.M != 0 {
		if err := s.NM.Validate(); err != nil {
			return err
		}
	}
	if s.ActDensity < 0 || s.ActDensity > 1 {
		return fmt.Errorf("accel: ActDensity %v outside [0,1]", s.ActDensity)
	}
	return nil
}

// Perf is the simulated outcome for one layer.
type Perf struct {
	Arch string
	// Cycles is the modeled latency.
	Cycles float64
	// ComputeCycles / MemoryCycles / OverheadCycles expose the bound terms.
	ComputeCycles, MemoryCycles, OverheadCycles float64
	// MACs is the effective multiply-accumulate count.
	MACs float64
	// DRAMBytes is the off-chip traffic.
	DRAMBytes float64
	// Energy itemizes the energy estimate.
	Energy energy.Breakdown
}

// EnergyUJ is the total energy in microjoules.
func (p Perf) EnergyUJ() float64 { return p.Energy.TotalUJ() }

// Arch is a simulated accelerator architecture.
type Arch interface {
	// Name identifies the architecture.
	Name() string
	// Simulate models one layer under the given sparsity.
	Simulate(l models.LayerShape, sp Sparsity) Perf
}

// maxOf3 returns the largest of three values.
func maxOf3(a, b, c float64) float64 {
	m := a
	if b > m {
		m = b
	}
	if c > m {
		m = c
	}
	return m
}
