package accel

import (
	"testing"

	"repro/internal/energy"
	"repro/internal/models"
	"repro/internal/sparsity"
)

func layerByName(t *testing.T, name string) models.LayerShape {
	t.Helper()
	for _, l := range models.ResNet50Shapes() {
		if l.Name == name {
			return l
		}
	}
	t.Fatalf("layer %s not found", name)
	return models.LayerShape{}
}

func archSet() (dense *DenseArch, stc *NvidiaSTCArch, dstc *DSTCArch, crisp *CRISPSTCArch) {
	hw := EdgeHW()
	e := energy.Default()
	return NewDense(hw, e), NewNvidiaSTC(hw, e), NewDSTC(hw, e), NewCRISPSTC(hw, e)
}

// crispSparsity returns the hybrid descriptor for a layer pruned to the
// given kept-column fraction at the given N:M and block size.
func crispSparsity(nm sparsity.NM, kept float64, b int) Sparsity {
	return Sparsity{NM: nm, KeptColFrac: kept, BlockSize: b, ActDensity: 1}
}

func TestDenseSimulatePositive(t *testing.T) {
	dense, _, _, _ := archSet()
	l := layerByName(t, "conv2_1.b")
	p := dense.Simulate(l, Dense())
	if p.Cycles <= 0 || p.EnergyUJ() <= 0 {
		t.Fatalf("non-positive perf: %+v", p)
	}
	if p.MACs != float64(l.MACs()) {
		t.Fatalf("dense MACs %v != layer MACs %v", p.MACs, l.MACs())
	}
}

func TestSparsityValidate(t *testing.T) {
	if err := Dense().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Sparsity{KeptColFrac: 1.5}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid KeptColFrac accepted")
	}
	bad = Sparsity{KeptColFrac: 0.5, NM: sparsity.NM{N: 5, M: 4}}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid NM accepted")
	}
}

func TestWeightDensity(t *testing.T) {
	s := crispSparsity(sparsity.NM{N: 1, M: 4}, 0.4, 64)
	if d := s.WeightDensity(); d != 0.1 {
		t.Fatalf("weight density %v, want 0.1", d)
	}
	if d := Dense().WeightDensity(); d != 1 {
		t.Fatalf("dense weight density %v", d)
	}
}

func TestNvidiaSTCCappedAtTwoX(t *testing.T) {
	dense, stc, _, _ := archSet()
	for _, nm := range []sparsity.NM{{N: 1, M: 4}, {N: 2, M: 4}} {
		for _, name := range []string{"conv2_1.b", "conv4_2.b", "conv5_3.c"} {
			l := layerByName(t, name)
			d := dense.Simulate(l, Dense())
			s := stc.Simulate(l, crispSparsity(nm, 0.4, 64)) // STC ignores blocks
			speedup := d.Cycles / s.Cycles
			if speedup > 2.05 {
				t.Fatalf("STC speedup %v exceeds 2x on %s at %s", speedup, name, nm)
			}
			if speedup < 1.0 {
				t.Fatalf("STC slower than dense on %s: %v", name, speedup)
			}
		}
	}
}

func TestNvidiaSTC34FallsBackToDense(t *testing.T) {
	dense, stc, _, _ := archSet()
	l := layerByName(t, "conv4_2.b")
	d := dense.Simulate(l, Dense())
	s := stc.Simulate(l, crispSparsity(sparsity.NM{N: 3, M: 4}, 1, 64))
	if ratio := d.Cycles / s.Cycles; ratio > 1.1 {
		t.Fatalf("3:4 on STC should run ≈dense, got speedup %v", ratio)
	}
}

func TestNvidiaSTC14NoBetterThan24(t *testing.T) {
	_, stc, _, _ := archSet()
	l := layerByName(t, "conv4_2.b")
	p14 := stc.Simulate(l, crispSparsity(sparsity.NM{N: 1, M: 4}, 1, 64))
	p24 := stc.Simulate(l, crispSparsity(sparsity.NM{N: 2, M: 4}, 1, 64))
	if p14.Cycles < p24.Cycles*0.99 {
		t.Fatalf("1:4 (%v cycles) must not beat 2:4 (%v): STC pads to 2:4", p14.Cycles, p24.Cycles)
	}
}

func TestCRISPSpeedupBands(t *testing.T) {
	// Fig 8: ≈7–14× at 1:4, 5–12× at 2:4, 2–8× at 3:4 with 80–90% global
	// sparsity. We test representative layers with per-layer kept fractions
	// in the paper's range and assert generous bands.
	dense, _, _, crisp := archSet()
	cases := []struct {
		nm       sparsity.NM
		kept     float64
		loX, hiX float64
	}{
		{sparsity.NM{N: 1, M: 4}, 0.5, 5, 20},
		{sparsity.NM{N: 2, M: 4}, 0.3, 4, 16},
		{sparsity.NM{N: 3, M: 4}, 0.2, 2, 10},
	}
	for _, tc := range cases {
		for _, name := range []string{"conv2_1.b", "conv3_2.b", "conv4_2.b"} {
			l := layerByName(t, name)
			d := dense.Simulate(l, Dense())
			c := crisp.Simulate(l, crispSparsity(tc.nm, tc.kept, 64))
			speedup := d.Cycles / c.Cycles
			if speedup < tc.loX || speedup > tc.hiX {
				t.Fatalf("%s %s kept=%.2f: speedup %.2f outside [%v,%v]",
					name, tc.nm, tc.kept, speedup, tc.loX, tc.hiX)
			}
		}
	}
}

func TestCRISPBeatsSTCAndDense(t *testing.T) {
	dense, stc, dstcA, crisp := archSet()
	nm := sparsity.NM{N: 2, M: 4}
	for _, l := range models.RepresentativeResNet50Layers() {
		if l.Kind != models.KindConv {
			continue
		}
		sp := crispSparsity(nm, 0.3, 64)
		spDSTC := sp
		spDSTC.ActDensity = 0.6
		d := dense.Simulate(l, Dense())
		s := stc.Simulate(l, sp)
		ds := dstcA.Simulate(l, spDSTC)
		c := crisp.Simulate(l, sp)
		if c.Cycles >= s.Cycles {
			t.Fatalf("%s: CRISP (%v) not faster than STC (%v)", l.Name, c.Cycles, s.Cycles)
		}
		if c.Cycles >= d.Cycles {
			t.Fatalf("%s: CRISP (%v) not faster than dense (%v)", l.Name, c.Cycles, d.Cycles)
		}
		if c.Cycles >= ds.Cycles {
			t.Fatalf("%s: CRISP (%v) not faster than DSTC (%v)", l.Name, c.Cycles, ds.Cycles)
		}
	}
}

func TestDSTCEarlyVsLateLayers(t *testing.T) {
	// DSTC must do well on early layers (large N) and degrade on late
	// layers (small N) — the crossover the paper highlights.
	dense, _, dstcA, _ := archSet()
	sp := Sparsity{NM: sparsity.NM{N: 2, M: 4}, KeptColFrac: 0.3, BlockSize: 64, ActDensity: 0.6}
	early := layerByName(t, "conv2_1.b") // N = 56×56
	late := layerByName(t, "conv5_1.b")  // N = 7×7
	se := dense.Simulate(early, Dense()).Cycles / dstcA.Simulate(early, sp).Cycles
	sl := dense.Simulate(late, Dense()).Cycles / dstcA.Simulate(late, sp).Cycles
	if se < 3 {
		t.Fatalf("DSTC early-layer speedup %v, want ≥3", se)
	}
	if sl >= se {
		t.Fatalf("DSTC late-layer speedup %v should trail early %v", sl, se)
	}
	if sl > 4 {
		t.Fatalf("DSTC late-layer speedup %v, want <4 (data-movement bound)", sl)
	}
}

func TestBlock64BeatsBlock16(t *testing.T) {
	_, _, _, crisp := archSet()
	nm := sparsity.NM{N: 2, M: 4}
	for _, name := range []string{"conv3_2.b", "conv4_2.b"} {
		l := layerByName(t, name)
		c16 := crisp.Simulate(l, crispSparsity(nm, 0.3, 16))
		c64 := crisp.Simulate(l, crispSparsity(nm, 0.3, 64))
		if c64.Cycles > c16.Cycles {
			t.Fatalf("%s: B=64 (%v) slower than B=16 (%v)", name, c64.Cycles, c16.Cycles)
		}
		if c64.EnergyUJ() > c16.EnergyUJ() {
			t.Fatalf("%s: B=64 energy above B=16", name)
		}
	}
}

func TestCRISPEnergyEfficiencyBand(t *testing.T) {
	// Paper: up to 30× energy efficiency vs dense. At aggressive per-layer
	// sparsity the ratio should reach >10× and stay below ~60×.
	dense, _, _, crisp := archSet()
	l := layerByName(t, "conv4_2.b")
	d := dense.Simulate(l, Dense())
	c := crisp.Simulate(l, crispSparsity(sparsity.NM{N: 1, M: 4}, 0.1, 64))
	ratio := d.EnergyUJ() / c.EnergyUJ()
	if ratio < 10 || ratio > 60 {
		t.Fatalf("energy efficiency %v outside [10,60]", ratio)
	}
}

func TestMoreSparsityNeverSlower(t *testing.T) {
	_, _, _, crisp := archSet()
	l := layerByName(t, "conv4_2.b")
	nm := sparsity.NM{N: 2, M: 4}
	prev := crisp.Simulate(l, crispSparsity(nm, 1.0, 64)).Cycles
	for _, kept := range []float64{0.8, 0.6, 0.4, 0.2, 0.1} {
		cur := crisp.Simulate(l, crispSparsity(nm, kept, 64)).Cycles
		if cur > prev*1.0001 {
			t.Fatalf("kept=%v slower (%v) than previous (%v)", kept, cur, prev)
		}
		prev = cur
	}
}

func TestEnergyBreakdownComponentsPositive(t *testing.T) {
	dense, _, _, crisp := archSet()
	l := layerByName(t, "conv3_2.b")
	for _, p := range []Perf{
		dense.Simulate(l, Dense()),
		crisp.Simulate(l, crispSparsity(sparsity.NM{N: 2, M: 4}, 0.4, 32)),
	} {
		e := p.Energy
		if e.DRAM <= 0 || e.SMEM <= 0 || e.RF <= 0 || e.Compute <= 0 {
			t.Fatalf("%s: non-positive energy component %+v", p.Arch, e)
		}
	}
}

func TestLinearLayerSimulates(t *testing.T) {
	dense, _, _, crisp := archSet()
	fc := models.LayerShape{Name: "fc", Kind: models.KindLinear, InC: 2048, OutC: 1000, KH: 1, KW: 1, Stride: 1, InH: 1, InW: 1}
	d := dense.Simulate(fc, Dense())
	c := crisp.Simulate(fc, crispSparsity(sparsity.NM{N: 2, M: 4}, 0.5, 64))
	if d.Cycles <= 0 || c.Cycles <= 0 {
		t.Fatal("linear layer simulation failed")
	}
	if c.Cycles >= d.Cycles {
		t.Fatalf("sparse fc (%v) not faster than dense (%v)", c.Cycles, d.Cycles)
	}
}
