package accel

import (
	"testing"

	"repro/internal/energy"
	"repro/internal/sparsity"
)

func TestTileSimTraceInvariants(t *testing.T) {
	hw := EdgeHW()
	for _, arch := range []string{"dense", "crisp-stc"} {
		for _, name := range []string{"conv2_1.b", "conv4_2.b", "conv5_1.b"} {
			l := layerByName(t, name)
			sp := crispSparsity(sparsity.NM{N: 2, M: 4}, 0.3, 64)
			tr, err := TileSim(hw, arch, l, sp)
			if err != nil {
				t.Fatalf("%s/%s: %v", arch, name, err)
			}
			if tr.Tiles != len(tr.Events) || tr.Tiles == 0 {
				t.Fatalf("%s/%s: bad tile count", arch, name)
			}
			var prevLoadEnd, prevComputeEnd float64
			for i, ev := range tr.Events {
				if ev.Index != i {
					t.Fatalf("event order broken at %d", i)
				}
				if ev.LoadStart < prevLoadEnd-1e-9 {
					t.Fatalf("%s/%s: load %d starts before previous finished", arch, name, i)
				}
				if ev.ComputeStart < ev.LoadEnd-1e-9 {
					t.Fatalf("%s/%s: compute %d starts before its load", arch, name, i)
				}
				if ev.ComputeStart < prevComputeEnd-1e-9 {
					t.Fatalf("%s/%s: compute %d overlaps previous compute", arch, name, i)
				}
				if ev.ComputeEnd <= ev.ComputeStart || ev.LoadEnd <= ev.LoadStart {
					t.Fatalf("%s/%s: zero-length phase at %d", arch, name, i)
				}
				prevLoadEnd = ev.LoadEnd
				prevComputeEnd = ev.ComputeEnd
			}
			if tr.ComputeBusy <= 0 || tr.ComputeBusy > 1 || tr.MemBusy <= 0 || tr.MemBusy > 1.0001 {
				t.Fatalf("%s/%s: busy fractions out of range: %+v", arch, name, tr)
			}
			if tr.Cycles < prevComputeEnd {
				t.Fatalf("%s/%s: total cycles below last compute end", arch, name)
			}
		}
	}
}

func TestTileSimAgreesWithClosedForm(t *testing.T) {
	// The event-driven schedule must land within a modest factor of the
	// closed-form max(compute, memory) bound: never faster than the bound's
	// dominant term, never more than ~2.5× slower.
	hw := EdgeHW()
	e := energy.Default()
	dense := NewDense(hw, e)
	crisp := NewCRISPSTC(hw, e)
	sp := crispSparsity(sparsity.NM{N: 2, M: 4}, 0.3, 64)
	for _, name := range []string{"conv2_1.b", "conv3_2.b", "conv4_2.b", "conv5_1.b"} {
		l := layerByName(t, name)
		dTrace, err := TileSim(hw, "dense", l, Dense())
		if err != nil {
			t.Fatal(err)
		}
		dClosed := dense.Simulate(l, Dense())
		if ratio := dTrace.Cycles / dClosed.Cycles; ratio < 0.8 || ratio > 2.5 {
			t.Fatalf("dense %s: tile sim %.0f vs closed form %.0f (ratio %.2f)",
				name, dTrace.Cycles, dClosed.Cycles, ratio)
		}
		cTrace, err := TileSim(hw, "crisp-stc", l, sp)
		if err != nil {
			t.Fatal(err)
		}
		cClosed := crisp.Simulate(l, sp)
		if ratio := cTrace.Cycles / cClosed.Cycles; ratio < 0.5 || ratio > 2.5 {
			t.Fatalf("crisp %s: tile sim %.0f vs closed form %.0f (ratio %.2f)",
				name, cTrace.Cycles, cClosed.Cycles, ratio)
		}
	}
}

func TestTileSimSparsitySpeedsUp(t *testing.T) {
	hw := EdgeHW()
	l := layerByName(t, "conv4_2.b")
	d, err := TileSim(hw, "dense", l, Dense())
	if err != nil {
		t.Fatal(err)
	}
	c, err := TileSim(hw, "crisp-stc", l, crispSparsity(sparsity.NM{N: 2, M: 4}, 0.3, 64))
	if err != nil {
		t.Fatal(err)
	}
	if c.Cycles >= d.Cycles {
		t.Fatalf("sparse tile schedule (%.0f) not faster than dense (%.0f)", c.Cycles, d.Cycles)
	}
}

func TestTileSimComputeBoundLayersBusy(t *testing.T) {
	// A big dense conv on this HW is compute-bound: the fabric should be
	// busy most of the time under double buffering.
	hw := EdgeHW()
	l := layerByName(t, "conv4_2.b")
	tr, err := TileSim(hw, "dense", l, Dense())
	if err != nil {
		t.Fatal(err)
	}
	if tr.ComputeBusy < 0.5 {
		t.Fatalf("dense compute busy only %.2f", tr.ComputeBusy)
	}
}

func TestTileSimRejectsUnknownArch(t *testing.T) {
	hw := EdgeHW()
	l := layerByName(t, "conv2_1.b")
	if _, err := TileSim(hw, "warp9", l, Dense()); err == nil {
		t.Fatal("unknown architecture accepted")
	}
	bad := Sparsity{KeptColFrac: 7}
	if _, err := TileSim(hw, "dense", l, bad); err == nil {
		t.Fatal("invalid sparsity accepted")
	}
}
