package accel

import (
	"math"

	"repro/internal/energy"
	"repro/internal/models"
)

// DenseArch models a conventional dense edge accelerator: every MAC
// executes, every operand moves.
type DenseArch struct {
	HW HW
	E  energy.Model
	// Util is the achievable MAC utilization under tiling edge effects.
	Util float64
}

// NewDense constructs the dense baseline.
func NewDense(hw HW, e energy.Model) *DenseArch { return &DenseArch{HW: hw, E: e, Util: 0.85} }

// Name implements Arch.
func (a *DenseArch) Name() string { return "dense" }

// Simulate implements Arch.
func (a *DenseArch) Simulate(l models.LayerShape, sp Sparsity) Perf {
	m, k, n := l.GEMMDims()
	macs := float64(m) * float64(k) * float64(n)
	hw := a.HW
	compute := macs / (float64(hw.MACsPerCycle) * a.Util)
	weightBytes := float64(m*k) * hw.WeightBytes
	dram := weightBytes + float64(k*n)*hw.ActBytes*actStreams(weightBytes, hw) + float64(m*n)*hw.ActBytes
	mem := dram / hw.DRAMBytesPerCycle
	smemBytes := macs * (hw.WeightBytes + hw.ActBytes) / hw.RFReuse
	smem := smemBytes / hw.SMEMBytesPerCycle
	cycles := maxOf3(compute, mem, smem) + hw.StartupCycles
	rfBytes := macs * 3 // two reads + one accumulate per MAC
	return Perf{
		Arch:           a.Name(),
		Cycles:         cycles,
		ComputeCycles:  compute,
		MemoryCycles:   math.Max(mem, smem),
		OverheadCycles: hw.StartupCycles,
		MACs:           macs,
		DRAMBytes:      dram,
		Energy:         a.E.Integrate(dram, smemBytes, rfBytes, macs, 0, 0),
	}
}

// NvidiaSTCArch models NVIDIA's Sparse Tensor Core: weight-side 2:4 only.
// 1:4 models are stored as 2:4 with a padded zero slot (the hardware still
// spends the slot → no gain beyond 2×, utilization halves); 3:4 cannot be
// expressed and falls back to dense execution. No block sparsity: all
// activations are fetched.
type NvidiaSTCArch struct {
	HW   HW
	E    energy.Model
	Util float64
}

// NewNvidiaSTC constructs the STC baseline.
func NewNvidiaSTC(hw HW, e energy.Model) *NvidiaSTCArch {
	return &NvidiaSTCArch{HW: hw, E: e, Util: 0.85}
}

// Name implements Arch.
func (a *NvidiaSTCArch) Name() string { return "nvidia-stc" }

// Simulate implements Arch.
func (a *NvidiaSTCArch) Simulate(l models.LayerShape, sp Sparsity) Perf {
	m, k, n := l.GEMMDims()
	denseMACs := float64(m) * float64(k) * float64(n)
	hw := a.HW

	// Stored weight density on this hardware: 0.5 when the pattern fits in
	// 2:4 (N ≤ 2, M == 4), otherwise dense.
	stored := 1.0
	supported := sp.NM.M == 4 && sp.NM.N <= 2 && sp.NM.N >= 1
	if supported {
		stored = 0.5
	}
	// The STC has no block-sparsity support: pruned block columns still
	// stream activations and occupy slots, so only the N:M half applies.
	slots := denseMACs * stored
	compute := slots / (float64(hw.MACsPerCycle) * a.Util)

	weightBytes := float64(m*k) * stored * hw.WeightBytes
	if supported {
		weightBytes += metaBits(float64(m*k)*stored*2) / 8 // 2-bit slot indices
	}
	dram := weightBytes + float64(k*n)*hw.ActBytes*actStreams(weightBytes, hw) + float64(m*n)*hw.ActBytes
	mem := dram / hw.DRAMBytesPerCycle
	smemBytes := slots * (hw.WeightBytes + hw.ActBytes) / hw.RFReuse
	smem := smemBytes / hw.SMEMBytesPerCycle
	cycles := maxOf3(compute, mem, smem) + hw.StartupCycles

	// Effective (useful) MACs for energy: padded zero slots still burn the
	// slot but we charge them as compute activity — that is the utilization
	// loss the paper calls out.
	rfBytes := slots * 3
	return Perf{
		Arch:           a.Name(),
		Cycles:         cycles,
		ComputeCycles:  compute,
		MemoryCycles:   math.Max(mem, smem),
		OverheadCycles: hw.StartupCycles,
		MACs:           slots,
		DRAMBytes:      dram,
		Energy:         a.E.Integrate(dram, smemBytes, rfBytes, slots, 0, 0),
	}
}

// DSTCArch models the Dual-side Sparse Tensor Core: it exploits both weight
// sparsity (any pattern, via compressed bitmaps) and activation sparsity.
// Its cost: gather/scatter machinery with limited throughput, SIMD lanes
// that starve when the output tile offers too little row parallelism
// (small-N late layers), and partial-sum spills when m×n exceeds SMEM —
// the data-movement bottleneck its own paper reports for late layers.
type DSTCArch struct {
	HW   HW
	E    energy.Model
	Util float64
	// GatherPerCycle is the two-sided intersection throughput.
	GatherPerCycle float64
	// VectorLanes is the SIMD width that must be filled by output columns.
	VectorLanes float64
}

// NewDSTC constructs the DSTC baseline.
func NewDSTC(hw HW, e energy.Model) *DSTCArch {
	return &DSTCArch{HW: hw, E: e, Util: 0.75, GatherPerCycle: 256, VectorLanes: 256}
}

// Name implements Arch.
func (a *DSTCArch) Name() string { return "dstc" }

// Simulate implements Arch.
func (a *DSTCArch) Simulate(l models.LayerShape, sp Sparsity) Perf {
	m, k, n := l.GEMMDims()
	denseMACs := float64(m) * float64(k) * float64(n)
	hw := a.HW
	dw := sp.WeightDensity()
	da := sp.ActDensity
	if da == 0 {
		da = 1
	}
	macs := denseMACs * dw * da

	// Lane starvation on small outputs: the outer-product vector unit needs
	// ≈VectorLanes surviving output columns to stay busy.
	laneUtil := math.Min(1, da*float64(n)/a.VectorLanes)
	util := a.Util * laneUtil
	compute := macs / (float64(hw.MACsPerCycle) * util)
	gather := macs / a.GatherPerCycle

	weightBytes := float64(m*k)*dw*hw.WeightBytes + float64(m*k)/8 // values + bitmap
	actBytes := (float64(k*n)*da*hw.ActBytes + float64(k*n)/8) * actStreams(weightBytes, hw)
	outBytes := float64(m*n) * hw.ActBytes
	// Partial-sum handling: the outer-product accumulator holds m×n partials
	// at PsumBytes. When they exceed half the SMEM the scheduler either
	// round-trips the excess to DRAM or tiles the output and re-streams the
	// compressed weights once per extra tile — it picks the cheaper option.
	psumWS := float64(m*n) * hw.PsumBytes
	spill := 0.0
	if budget := float64(hw.SMEMBytes) / 2; psumWS > budget {
		roundTrip := (psumWS - budget) * 2
		chunks := math.Ceil(psumWS / budget)
		restream := weightBytes * (chunks - 1)
		spill = math.Min(roundTrip, restream)
	}
	dram := weightBytes + actBytes + outBytes + spill
	mem := dram / hw.DRAMBytesPerCycle
	smemBytes := macs*(hw.WeightBytes+hw.ActBytes)/4 + psumWS // poor reuse in irregular gather
	smem := smemBytes / hw.SMEMBytesPerCycle
	cycles := maxOf3(compute, math.Max(mem, smem), gather) + hw.StartupCycles

	rfBytes := macs * 3
	return Perf{
		Arch:           a.Name(),
		Cycles:         cycles,
		ComputeCycles:  compute,
		MemoryCycles:   math.Max(mem, smem),
		OverheadCycles: gather + hw.StartupCycles,
		MACs:           macs,
		DRAMBytes:      dram,
		Energy:         a.E.Integrate(dram, smemBytes, rfBytes, macs, macs, a.E.GatherOp),
	}
}

// CRISPSTCArch models the paper's accelerator: block sparsity skips whole
// block columns (their activations are never fetched), N:M slots feed the
// MACs through offset-driven multiplexers with near-perfect load balance
// (uniform blocks per row), and per-block index handling adds a small fixed
// cost that favors large blocks.
type CRISPSTCArch struct {
	HW   HW
	E    energy.Model
	Util float64
	// BlockOverheadCycles is the index/address-generation cost per kept
	// block per tensor core.
	BlockOverheadCycles float64
	// Cores is the tensor-core count the block overhead parallelizes over.
	Cores float64
}

// NewCRISPSTC constructs the CRISP accelerator.
func NewCRISPSTC(hw HW, e energy.Model) *CRISPSTCArch {
	return &CRISPSTCArch{HW: hw, E: e, Util: 0.95, BlockOverheadCycles: 16, Cores: 4}
}

// Name implements Arch.
func (a *CRISPSTCArch) Name() string { return "crisp-stc" }

// Simulate implements Arch.
func (a *CRISPSTCArch) Simulate(l models.LayerShape, sp Sparsity) Perf {
	m, k, n := l.GEMMDims()
	denseMACs := float64(m) * float64(k) * float64(n)
	hw := a.HW
	kept := sp.KeptColFrac
	if kept == 0 {
		kept = 1
	}
	nmDensity := 1.0
	nmBits := 0.0
	if sp.NM.M > 0 {
		nmDensity = sp.NM.Density()
		nmBits = math.Ceil(math.Log2(float64(sp.NM.M)))
	}
	dw := kept * nmDensity
	macs := denseMACs * dw
	compute := macs / (float64(hw.MACsPerCycle) * a.Util)

	b := float64(sp.BlockSize)
	if b == 0 {
		b = 64
	}
	// Kept blocks across the weight matrix; each costs index handling.
	gridRows := math.Ceil(float64(m) / b)
	gridCols := math.Ceil(float64(k) / b)
	keptBlocks := gridRows * gridCols * kept
	blockOverhead := keptBlocks * a.BlockOverheadCycles / a.Cores

	// Traffic: compressed weights + metadata; activations only for kept
	// block columns; outputs dense.
	weightBytes := float64(m*k)*dw*hw.WeightBytes +
		metaBits(float64(m*k)*dw*nmBits)/8 + // N:M offsets
		metaBits(keptBlocks*math.Max(1, math.Ceil(math.Log2(math.Max(2, gridCols)))))/8
	actBytes := float64(k*n) * kept * hw.ActBytes * actStreams(weightBytes, hw)
	outBytes := float64(m*n) * hw.ActBytes
	dram := weightBytes + actBytes + outBytes
	mem := dram / hw.DRAMBytesPerCycle
	smemBytes := macs * (hw.WeightBytes + hw.ActBytes) / hw.RFReuse
	smem := smemBytes / hw.SMEMBytesPerCycle
	cycles := maxOf3(compute, math.Max(mem, smem), 0) + blockOverhead + hw.StartupCycles

	rfBytes := macs * 3
	// MUX selections: one per stored slot (macs plus padded slots; padding
	// is negligible, charge macs).
	return Perf{
		Arch:           a.Name(),
		Cycles:         cycles,
		ComputeCycles:  compute,
		MemoryCycles:   math.Max(mem, smem),
		OverheadCycles: blockOverhead + hw.StartupCycles,
		MACs:           macs,
		DRAMBytes:      dram,
		Energy:         a.E.Integrate(dram, smemBytes, rfBytes, macs, macs, a.E.MuxOp),
	}
}

// metaBits converts a bit count to bits, guarding negatives.
func metaBits(bits float64) float64 {
	if bits < 0 {
		return 0
	}
	return bits
}

// actStreams returns how many times the activation tensor must stream from
// DRAM in a tiled weight-stationary GEMM: once per SMEM-sized weight tile.
// Compressed weights fit in fewer tiles — a real source of the sparse
// architectures' energy advantage on large layers.
func actStreams(weightBytes float64, hw HW) float64 {
	budget := float64(hw.SMEMBytes) / 2
	s := math.Ceil(weightBytes / budget)
	if s < 1 {
		return 1
	}
	return s
}
