package accel

import (
	"sort"

	"repro/internal/format"
	"repro/internal/tensor"
)

// This file is the CPU-side tiling picker behind the blocked SpMM kernels
// in internal/format. Where tilesim.go schedules an accelerator's
// weight-stationary dataflow, SimulateTiling feeds the same double-buffered
// schedule core (runSchedule) with costs calibrated to the host CPU — a
// span-entry walk per column panel, Col/Val re-streamed once per panel
// pass, and a cache-thrash penalty once the activation matrix outgrows the
// last-level budget. PickTiling ranks candidate tilings (including the
// scalar reference kernel) by simulated cycles at plan-compile time; the
// inference engine installs the winner via Plan.SetTiling. The model is
// validated against measured kernels by TestTilingPredictionRanksMeasured.

// CPUHW returns the host-CPU calibration of the HW descriptor used by the
// tiling cost model: float64 operands with int32 column indices (12 bytes
// per stored entry), cache capacities standing in for SMEM, and sustained
// scalar MAC throughput standing in for the tensor fabric.
func CPUHW() HW {
	return HW{
		MACsPerCycle:      1,        // sustained scalar FMA with loads/stores
		SMEMBytes:         1 << 20,  // last-level working-set budget (≈ L2)
		L1Bytes:           32 << 10, // per-core L1D
		SMEMBytesPerCycle: 32,       // L2→core sustained
		DRAMBytesPerCycle: 8,        // ≈ 17 GB/s stream at ~2.1 GHz
		WeightBytes:       12,       // float64 value + int32 column index
		ActBytes:          8,        // float64 activations
		PsumBytes:         8,        // float64 partial sums
		StartupCycles:     200,      // kernel dispatch + pool wakeup
		RFReuse:           8,        // one panel's accumulators in registers
	}
}

// CacheBlockF64 derives the square float64 cache-block edge for this
// hardware: the largest power of two b such that a source and a
// destination block (2·b²·8 bytes) fill at most half the L1, leaving the
// other half for streams. tensor.CacheBlockF64 pins this value for the
// compile-time constant users (transpose, tile partitioning); the accel
// tests assert the two stay in agreement.
func (hw HW) CacheBlockF64() int {
	l1 := hw.L1Bytes
	if l1 <= 0 {
		l1 = 32 << 10
	}
	b := 1
	for 2*(2*b)*(2*b)*8 <= l1/2 {
		b *= 2
	}
	return b
}

// PlanShape is the kernel-relevant summary of a compiled plan: output rows,
// activation rows (Cols), stored entries, and the activation batch width
// the tiling is being chosen for.
type PlanShape struct {
	Rows, Cols, NNZ, Batch int
	// Uniform marks plans whose row spans all hold the same entry count
	// (the CRISP fixed-trip-count fast path) — slightly cheaper span walks.
	Uniform bool
}

// TilingScore is one candidate tiling with its simulated cost.
type TilingScore struct {
	Tiling format.Tiling
	// Cycles is the simulated kernel latency (lower is better).
	Cycles float64
}

// Per-entry walk costs, in cycles per stored entry per pass, calibrated
// against the measured kernels on the reference machine (see
// TestTilingPredictionRanksMeasured). The scalar kernel pays more per
// entry — its destination row is read-modified-written through cache on
// every entry — but walks each span exactly once at any batch width. The
// panel microkernels hold the destination in eight register accumulators
// (cheaper per entry) but re-walk the span once per eight-column panel, so
// their total entry overhead scales with ⌈n/8⌉ and the crossover lands
// near n ≈ 12, matching measurement and blockedAuto's single-pass rule.
const (
	scalarEntryCycles = 2.0
	panelEntryCycles  = 1.5
	// tileFixedCycles is the per-tile cost of scheduling a tile through
	// the outer loop and pool (loop setup, accumulator warm-up, dispatch).
	// Amortized to nothing at the default 64×128 tiles, it is what makes
	// pathological tiny tilings (4×8) rank — and measure — worst.
	tileFixedCycles = 1500.0
)

// SimulateTiling predicts the kernel latency of one tiling for the given
// plan shape, in cycles of the supplied hardware model.
//
// The scalar kernel (Tiling.Scalar) is modeled as one schedule "tile":
// span data and the full activation stream once at DRAM bandwidth while
// full-width row walks consume them, each entry paying scalarEntryCycles —
// the configuration measured fastest once the batch outgrows one panel
// pass, because contiguous rows ride the hardware prefetcher and the span
// streams exactly once.
//
// Blocked tilings partition the output into RowTile×ColTile tiles; within
// a tile, eight-column panel passes re-walk each row span, so Col/Val
// re-stream once per panel (⌈ct/8⌉ passes per tile) and every pass pays
// panelEntryCycles per entry on top of the MACs. While the activation fits
// the cache budget — and the batch is narrow enough that the span walks
// stay near one pass — the panels' register accumulators win; beyond
// either boundary the re-streams (at thrash-degraded bandwidth when the
// activation spills) hand the verdict back to scalar, like the measured
// kernels do.
func SimulateTiling(hw HW, ps PlanShape, t format.Tiling) float64 {
	n := ps.Batch
	if n < 1 {
		n = 1
	}
	nnz := float64(ps.NNZ)
	actBytes := float64(ps.Cols) * float64(n) * hw.ActBytes
	spanBytes := nnz * hw.WeightBytes
	macs := nnz * float64(n)
	perMAC := 1 / float64(hw.MACsPerCycle)

	if t.Scalar {
		// One pass: stream span + activation + dst, full-width row walks.
		// The stream is pipelined row chunk by row chunk — the hardware
		// prefetcher keeps the next rows' spans in flight while the
		// current rows compute — so schedule it as overlapping chunks
		// rather than one serial load+compute tile.
		chunks := max(1, ps.Rows/64)
		load := (spanBytes + actBytes + float64(ps.Rows)*float64(n)*hw.PsumBytes) / hw.DRAMBytesPerCycle
		compute := macs*perMAC + nnz*scalarEntryCycles
		f := float64(chunks)
		_, end, _, _ := runSchedule(chunks, load/f, compute/f, (spanBytes+actBytes)/f, macs/f)
		return end + hw.StartupCycles
	}

	rt, ct := t.RowTile, t.ColTile
	cb := hw.CacheBlockF64()
	if rt <= 0 {
		rt = 2 * cb
	}
	if ct <= 0 {
		ct = 4 * cb
	}
	rt = min(rt, ps.Rows)
	ct = min(ct, n)
	rTiles := ceilDiv(ps.Rows, rt)
	cTiles := ceilDiv(n, ct)
	tiles := rTiles * cTiles
	panelsPerTile := float64(ceilDiv(ct, 8))

	// Per tile: the tile's row spans re-stream once per panel pass, plus
	// the tile's activation column slice.
	tileSpanBytes := spanBytes / float64(rTiles) * panelsPerTile
	tileActBytes := float64(ps.Cols) * float64(ct) * hw.ActBytes
	bw := hw.SMEMBytesPerCycle
	if actBytes > float64(hw.SMEMBytes) {
		// Activation outgrows the budget: panel gathers thrash — loads
		// degrade to DRAM latency/bandwidth instead of cache hits.
		bw = hw.DRAMBytesPerCycle
	}
	load := (tileSpanBytes + tileActBytes) / bw

	// Per tile: MACs with register-resident accumulators, the span-walk
	// overhead repeated per panel pass, and the fixed tile dispatch cost.
	tileMACs := macs / float64(tiles)
	entryOverhead := nnz / float64(rTiles) * panelsPerTile * panelEntryCycles
	if ps.Uniform {
		// Fixed-trip-count spans: no RowPtr loads, better scheduling.
		entryOverhead *= 0.75
	}
	compute := tileMACs*perMAC + entryOverhead + tileFixedCycles

	_, end, _, _ := runSchedule(tiles, load, compute, tileSpanBytes+tileActBytes, tileMACs)
	return end + hw.StartupCycles
}

// RankTilings simulates the candidate set for a plan shape — the scalar
// reference, the package-default tiles, and cache-block-derived
// alternatives — and returns it sorted best (fewest cycles) first.
// Batches too narrow to fill a register panel rank the scalar kernel
// alone: the blocked dispatch refuses them anyway.
func RankTilings(hw HW, ps PlanShape) []TilingScore {
	cb := hw.CacheBlockF64()
	cands := []format.Tiling{{Scalar: true}}
	if ps.Batch >= 4 {
		cands = append(cands,
			format.Tiling{RowTile: 2 * cb, ColTile: 4 * cb},
			format.Tiling{RowTile: cb, ColTile: 2 * cb},
			format.Tiling{RowTile: 4 * cb, ColTile: 8 * cb},
			format.Tiling{RowTile: 2 * cb, ColTile: ps.Batch},
		)
	}
	scores := make([]TilingScore, 0, len(cands))
	for _, t := range cands {
		scores = append(scores, TilingScore{Tiling: t, Cycles: SimulateTiling(hw, ps, t)})
	}
	sort.SliceStable(scores, func(i, j int) bool { return scores[i].Cycles < scores[j].Cycles })
	return scores
}

// PickTiling returns the simulated-best tiling for a plan shape. The
// inference engine queries it at plan-compile time; when the pick is a
// blocked tiling it installs it via Plan.SetTiling, and when the pick is
// Scalar it leaves the plan's zero-value tiling in place, so dispatch
// falls back to the kernel's own per-call activation-size heuristic
// (which can still take the blocked path for batch shapes the
// compile-time query did not anticipate).
func PickTiling(hw HW, ps PlanShape) format.Tiling {
	return RankTilings(hw, ps)[0].Tiling
}

// The tensor package pins CacheBlockF64 as an untyped constant (it cannot
// import accel without a cycle); keep this file's derivation visibly tied
// to it. The accel tests assert CPUHW().CacheBlockF64() == this value.
var _ = [1]struct{}{}[tensor.CacheBlockF64-32]
