package accel

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/format"
	"repro/internal/sparsity"
	"repro/internal/tensor"
)

func TestCacheBlockAgreesWithTensor(t *testing.T) {
	if got := CPUHW().CacheBlockF64(); got != tensor.CacheBlockF64 {
		t.Fatalf("CPUHW().CacheBlockF64() = %d, tensor pins %d", got, tensor.CacheBlockF64)
	}
	// Accelerator configs leave L1Bytes zero; the derivation must fall back
	// to the same default rather than degenerate.
	if got := (HW{}).CacheBlockF64(); got != tensor.CacheBlockF64 {
		t.Fatalf("zero-L1 CacheBlockF64() = %d, want %d", got, tensor.CacheBlockF64)
	}
}

func TestPickTilingVerdicts(t *testing.T) {
	hw := CPUHW()
	// Single-panel batch with a cache-resident activation (2048·8·8 =
	// 128 KB): the panel kernels walk each span once with the destination
	// in registers and win.
	narrow := PlanShape{Rows: 512, Cols: 2048, NNZ: 512 * 2048 / 4, Batch: 8}
	if pick := PickTiling(hw, narrow); pick.Scalar {
		t.Fatalf("single-panel shape %+v picked scalar", narrow)
	} else if pick.RowTile <= 0 || pick.ColTile <= 0 {
		t.Fatalf("blocked pick has degenerate tiles: %+v", pick)
	}
	// Two panel passes (n=16): the re-walked Col/Val streams cost more
	// than the scalar kernel's single pass — scalar must win, mirroring
	// blockedAuto's single-pass rule.
	wide := PlanShape{Rows: 512, Cols: 2048, NNZ: 512 * 2048 / 4, Batch: 16}
	if pick := PickTiling(hw, wide); !pick.Scalar {
		t.Fatalf("two-pass shape %+v picked blocked tiling %+v", wide, pick)
	}
	// Streaming activation (4096·64·8 = 2 MB outgrows the budget): panel
	// gathers thrash on top of the extra passes; scalar by a wide margin.
	streaming := PlanShape{Rows: 512, Cols: 4096, NNZ: 512 * 4096 / 4, Batch: 64}
	if pick := PickTiling(hw, streaming); !pick.Scalar {
		t.Fatalf("streaming shape %+v picked blocked tiling %+v", streaming, pick)
	}
	// Below panelMin there is no panel to block; only scalar is ranked.
	if pick := PickTiling(hw, PlanShape{Rows: 64, Cols: 64, NNZ: 1024, Batch: 2}); !pick.Scalar {
		t.Fatalf("sub-panel batch picked blocked tiling %+v", pick)
	}
}

func TestUniformSpansNeverPredictedSlower(t *testing.T) {
	hw := CPUHW()
	ps := PlanShape{Rows: 64, Cols: 576, NNZ: 2944, Batch: 8}
	for _, tl := range []format.Tiling{{}, {RowTile: 64, ColTile: 128}} {
		ragged := SimulateTiling(hw, ps, tl)
		ps.Uniform = true
		uniform := SimulateTiling(hw, ps, tl)
		ps.Uniform = false
		if uniform > ragged {
			t.Fatalf("tiling %+v: uniform spans predicted slower (%.0f) than ragged (%.0f)", tl, uniform, ragged)
		}
	}
}

// uniformCRISPPlan builds a fully-uniform CRISP plan (every block kept,
// 2:4 inside) — the fixed-trip-count fast-path shape the picker's Uniform
// flag describes.
func uniformCRISPPlan(t *testing.T, rng *rand.Rand, rows, cols int) *format.Plan {
	t.Helper()
	w := tensor.Randn(rng, 1, rows, cols)
	for r := 0; r < rows; r++ {
		for g := 0; g < cols; g += 4 {
			// Zero two random positions of every four: magnitude pruning
			// keeps random columns, so the panel gathers see the irregular
			// access pattern real pruned models produce (a fixed kept-column
			// pattern would let every tiling degenerate to the same regular
			// stream and wash out the measurable differences).
			a, b := rng.Intn(4), rng.Intn(4)
			for b == a {
				b = rng.Intn(4)
			}
			w.Data[r*cols+g+a] = 0
			w.Data[r*cols+g+b] = 0
		}
	}
	e, err := format.EncodeCRISP(w, 4, sparsity.NM{N: 2, M: 4})
	if err != nil {
		t.Fatalf("EncodeCRISP: %v", err)
	}
	return e.Compile()
}

// measureTiling times one tiling on a plan: warm call, then min of reps
// (minimum filters scheduler noise on shared machines).
func measureTiling(p *format.Plan, x *tensor.Tensor, tl format.Tiling, reps int) time.Duration {
	v := *p
	v.SetTiling(tl)
	v.MatMul(x) // warm caches and the worker pool
	lowest := time.Duration(1<<63 - 1)
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		v.MatMul(x)
		if d := time.Since(start); d < lowest {
			lowest = d
		}
	}
	return lowest
}

// TestTilingPredictionRanksMeasured validates the cost model against the
// real kernels on the two contrasts that are robust on shared machines:
//
//  1. single-panel, cache-resident CRISP shape — the model predicts the
//     blocked tiling beats the scalar reference (register accumulators,
//     one span pass), and measurement must agree;
//  2. streaming shape at wide batch — the model predicts a pathological
//     4×8 tiling loses badly to scalar (the activation re-streams from
//     DRAM once per tiny column tile), and measurement must agree.
//
// Slack is generous (min-of-N timing, 1.1× margins): the assertions check
// ordering, not absolute cycle counts.
func TestTilingPredictionRanksMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement; skipped under -short")
	}
	rng := rand.New(rand.NewSource(7))
	hw := CPUHW()
	scalar := format.Tiling{Scalar: true}

	// Contrast 1: blocked wins the single-panel resident shape.
	p := uniformCRISPPlan(t, rng, 512, 512)
	ps := PlanShape{Rows: 512, Cols: 512, NNZ: p.NNZ(), Batch: 8, Uniform: true}
	best := RankTilings(hw, ps)[0]
	if best.Tiling.Scalar {
		t.Fatalf("model picked scalar for single-panel resident shape %+v", ps)
	}
	x := tensor.Randn(rng, 1, 512, 8)
	mBest := measureTiling(p, x, best.Tiling, 7)
	mScalar := measureTiling(p, x, scalar, 7)
	t.Logf("resident n=8: blocked %+v %v vs scalar %v (predicted %.0f vs %.0f cycles)",
		best.Tiling, mBest, mScalar, best.Cycles, SimulateTiling(hw, ps, scalar))
	if float64(mBest) > 1.1*float64(mScalar) {
		t.Errorf("predicted-best tiling measured %v, scalar %v; model ranking not reflected", mBest, mScalar)
	}

	// Contrast 2: a pathological tiny-column tiling loses the streaming
	// shape. 4096·64·8 = 2 MB of activation re-streams once per 8-wide
	// column tile.
	const rows, cols, n = 256, 4096, 64
	w := tensor.Randn(rng, 1, rows, cols)
	for i := range w.Data {
		if rng.Float64() < 0.75 {
			w.Data[i] = 0
		}
	}
	sp := format.EncodeCSR(w).Compile()
	sps := PlanShape{Rows: rows, Cols: cols, NNZ: sp.NNZ(), Batch: n}
	bad := format.Tiling{RowTile: 4, ColTile: 8}
	scalarCycles := SimulateTiling(hw, sps, scalar)
	badCycles := SimulateTiling(hw, sps, bad)
	if scalarCycles >= badCycles {
		t.Fatalf("model scores pathological 4×8 tiling (%.0f cycles) at or below scalar (%.0f) on streaming shape", badCycles, scalarCycles)
	}
	sx := tensor.Randn(rng, 1, cols, n)
	mStream := measureTiling(sp, sx, scalar, 3)
	mBad := measureTiling(sp, sx, bad, 3)
	t.Logf("streaming n=64: scalar %v vs pathological %v (predicted %.0f vs %.0f cycles)",
		mStream, mBad, scalarCycles, badCycles)
	if float64(mBad) < 1.1*float64(mStream) {
		t.Errorf("pathological tiling measured %v vs scalar %v on streaming shape; expected a clear gap", mBad, mStream)
	}
}
