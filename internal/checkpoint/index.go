package checkpoint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/fault"
)

// IndexFile is the conventional name of the snapshot index inside a
// snapshot directory.
const IndexFile = "index"

// indexHeader versions the index format independently of the record format.
const indexHeader = "CRSPIDX1"

// Index maps personalization cache keys (e.g. "3,17,42") to the record
// filenames holding their snapshots, relative to the snapshot directory.
// It is the directory's table of contents: files not listed here are
// ignored on restore, so a torn record write (a leftover temp file) can
// never be picked up.
type Index map[string]string

// ReadIndex loads an index file from the real filesystem; see ReadIndexFS.
func ReadIndex(path string) (Index, error) { return ReadIndexFS(fault.OS{}, path) }

// ReadIndexFS loads an index file. A missing file is an empty index, not an
// error; a malformed file is an error. Entries are appended one per write
// (AppendIndex), so the file is a journal: duplicate keys resolve to the
// last entry, and a malformed FINAL line — a write torn by a crash — is
// dropped silently rather than poisoning the whole index (the orphaned
// record re-indexes on its next snapshot). A malformed interior line is
// still an error.
func ReadIndexFS(fsys fault.FS, path string) (Index, error) {
	f, err := fsys.Open(path)
	if os.IsNotExist(err) {
		return Index{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() || sc.Text() != indexHeader {
		return nil, fmt.Errorf("checkpoint: %s is not a snapshot index", path)
	}
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	idx := Index{}
	for i, l := range lines {
		key, file, ok := strings.Cut(l, "\t")
		if !ok || key == "" || file == "" {
			if i == len(lines)-1 {
				break // torn tail: drop the partial entry
			}
			return nil, fmt.Errorf("checkpoint: malformed index entry at %s line %d", path, i+1)
		}
		idx[key] = file
	}
	return idx, nil
}

// AppendIndex journals one entry on the real filesystem; see AppendIndexFS.
func AppendIndex(path, key, file string) error {
	return AppendIndexFS(fault.OS{}, path, key, file)
}

// AppendIndexFS journals one entry to the index file in a single O_APPEND
// write (creating the file with its header first if needed), so indexing a
// new snapshot costs O(1) instead of rewriting every entry. ReadIndex's
// last-entry-wins and torn-tail rules make the append crash-safe: a partial
// final line loses only that entry, never the index. The entry is fsynced
// before the call returns — an indexed snapshot is an acknowledged one, and
// an acknowledgment that can evaporate in a power cut is a lie.
func AppendIndexFS(fsys fault.FS, path, key, file string) error {
	if key == "" || file == "" || strings.ContainsAny(key+file, "\t\n") {
		return fmt.Errorf("checkpoint: invalid index entry %q -> %q", key, file)
	}
	f, err := fsys.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	entry := key + "\t" + file + "\n"
	switch {
	case st.Size() == 0:
		entry = indexHeader + "\n" + entry
	default:
		// Never concatenate onto a torn tail: if the file does not end in
		// a newline, terminate the partial line first (ReadIndex then
		// rejects or drops it on its own merits, instead of a garbled key).
		var last [1]byte
		if _, err := f.ReadAt(last[:], st.Size()-1); err != nil {
			f.Close()
			return err
		}
		if last[0] != '\n' {
			entry = "\n" + entry
		}
	}
	if _, err := f.Write([]byte(entry)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteIndex atomically replaces the index file on the real filesystem;
// see WriteIndexFS.
func WriteIndex(path string, idx Index) error {
	return WriteIndexFS(fault.OS{}, path, idx)
}

// WriteIndexFS atomically replaces the index file: the new content lands in
// a temp file in the same directory (written and fsynced before the rename
// publishes it, then the directory is fsynced so the rename itself is
// durable), so readers see either the old or the new index, never a torn
// one — even across a power cut. Entries are written in sorted key order
// for reproducible files.
func WriteIndexFS(fsys fault.FS, path string, idx Index) error {
	var b strings.Builder
	b.WriteString(indexHeader + "\n")
	keys := make([]string, 0, len(idx))
	for k := range idx {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s\t%s\n", k, idx[k])
	}

	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(b.String())); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}
