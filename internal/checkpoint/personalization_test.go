package checkpoint

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/pruner"
)

// prunedModel builds a small classifier with non-trivial weights and a
// mask on every prunable parameter, so a record round trip exercises both
// payload kinds.
func prunedModel(seed int64) *nn.Classifier {
	clf := models.Build(models.ResNet, rand.New(rand.NewSource(seed)), 4, 1)
	for i, p := range clf.PrunableParams() {
		m := p.EnsureMask()
		for j := range m.Data {
			if (i+j)%3 == 0 {
				m.Data[j] = 0
			} else {
				m.Data[j] = 1
			}
		}
	}
	return clf
}

func testRecord() PersonalizationRecord {
	return PersonalizationRecord{
		Key:      "1,3",
		Classes:  []int{1, 3},
		Accuracy: 0.875,
		Report: pruner.Report{
			Method:           "crisp",
			Target:           0.7,
			AchievedSparsity: 0.7125,
			FLOPsRatio:       0.41,
			Layers: []pruner.LayerStat{
				{Name: "conv1.w", Rows: 16, Cols: 27, Sparsity: 0.5, KeptBlockCols: 3, GridCols: 7},
				// −1 marks block-exempt layers; the signed field must survive.
				{Name: "head.w", Rows: 4, Cols: 16, Sparsity: 0.75, KeptBlockCols: -1, GridCols: 4},
			},
			Iterations: []pruner.IterStat{
				{Iteration: 0, Kappa: 0.6, Sparsity: 0.61, Loss: 1.2},
				{Iteration: 1, Kappa: 0.7, Sparsity: 0.71, Loss: 0.9},
			},
		},
	}
}

func TestPersonalizationRoundTrip(t *testing.T) {
	src := prunedModel(7)
	rec := testRecord()
	var buf bytes.Buffer
	if err := SavePersonalization(&buf, rec, src); err != nil {
		t.Fatal(err)
	}

	dst := models.Build(models.ResNet, rand.New(rand.NewSource(8)), 4, 1)
	got, err := LoadPersonalization(bytes.NewReader(buf.Bytes()), dst)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("record diverged:\ngot  %+v\nwant %+v", got, rec)
	}

	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		for j := range sp[i].W.Data {
			if sp[i].W.Data[j] != dp[i].W.Data[j] {
				t.Fatalf("param %s weight %d not bit-identical", sp[i].Name, j)
			}
		}
		if (sp[i].Mask == nil) != (dp[i].Mask == nil) {
			t.Fatalf("param %s mask presence diverged", sp[i].Name)
		}
		if sp[i].Mask != nil && !reflect.DeepEqual(sp[i].Mask.Data, dp[i].Mask.Data) {
			t.Fatalf("param %s mask diverged", sp[i].Name)
		}
	}
}

// TestVersionsDoNotCrossLoad pins the compatibility contract: v1 classifier
// streams keep loading via Load, and neither loader silently accepts the
// other's version.
func TestVersionsDoNotCrossLoad(t *testing.T) {
	clf := prunedModel(9)

	var v1 bytes.Buffer
	if err := Save(&v1, clf); err != nil {
		t.Fatal(err)
	}
	dst := models.Build(models.ResNet, rand.New(rand.NewSource(10)), 4, 1)
	if err := Load(bytes.NewReader(v1.Bytes()), dst); err != nil {
		t.Fatalf("v1 stream no longer loads: %v", err)
	}
	if _, err := LoadPersonalization(bytes.NewReader(v1.Bytes()), dst); err == nil {
		t.Fatal("LoadPersonalization accepted a v1 classifier stream")
	}

	var v2 bytes.Buffer
	if err := SavePersonalization(&v2, testRecord(), clf); err != nil {
		t.Fatal(err)
	}
	if err := Load(bytes.NewReader(v2.Bytes()), dst); err == nil {
		t.Fatal("Load accepted a v2 personalization record")
	}
}

// TestPersonalizationFailsClosed truncates and corrupts a valid record at
// many offsets: every mutation must produce an error, never a panic.
func TestPersonalizationFailsClosed(t *testing.T) {
	clf := prunedModel(11)
	var buf bytes.Buffer
	if err := SavePersonalization(&buf, testRecord(), clf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	// A truncated or mutated load may leave dst partially written — that is
	// part of the contract (callers restore into throwaway clones), so one
	// destination model serves every mutation below.
	dst := models.Build(models.ResNet, rand.New(rand.NewSource(12)), 4, 1)
	for cut := 0; cut < len(valid); cut += 31 {
		if _, err := LoadPersonalization(bytes.NewReader(valid[:cut]), dst); err == nil {
			t.Fatalf("truncation at %d/%d bytes loaded without error", cut, len(valid))
		}
	}

	// Flipping bytes anywhere must error, never panic: the crc64 trailer
	// catches flips even inside the f64 payload (the exhaustive sweep lives
	// in corruption_test.go; this is the quick structured-prefix pass).
	for off := 4; off < 60 && off < len(valid); off++ {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0xFF
		if _, err := LoadPersonalization(bytes.NewReader(mut), dst); err == nil {
			t.Fatalf("byte flip at %d loaded without error", off)
		}
	}
}

func TestIndexRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), IndexFile)

	idx, err := ReadIndex(path)
	if err != nil {
		t.Fatalf("missing index must read as empty, got %v", err)
	}
	if len(idx) != 0 {
		t.Fatalf("missing index not empty: %v", idx)
	}

	idx = Index{"1,3": "p01.ckpt", "0,2,4": "p02.ckpt"}
	if err := WriteIndex(path, idx); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, idx) {
		t.Fatalf("index round trip: got %v want %v", got, idx)
	}

	// Overwrite replaces atomically (no merge with the old content).
	idx2 := Index{"5": "p03.ckpt"}
	if err := WriteIndex(path, idx2); err != nil {
		t.Fatal(err)
	}
	if got, _ := ReadIndex(path); !reflect.DeepEqual(got, idx2) {
		t.Fatalf("overwrite: got %v want %v", got, idx2)
	}
}

// TestIndexJournal pins the append-mode semantics: O(1) appends, header on
// first write, last-entry-wins for duplicate keys, a torn final line is
// dropped, and a malformed interior line is still an error.
func TestIndexJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), IndexFile)
	for _, e := range [][2]string{{"1,3", "a.ckpt"}, {"2", "b.ckpt"}, {"1,3", "c.ckpt"}} {
		if err := AppendIndex(path, e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	want := Index{"1,3": "c.ckpt", "2": "b.ckpt"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("journal read %v, want %v", got, want)
	}

	if err := AppendIndex(path, "bad\tkey", "x"); err == nil {
		t.Fatal("tab in key must be rejected")
	}

	// A crash mid-append leaves a partial final line: drop it, keep the rest.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("4,9"); err != nil { // no tab, no newline
		t.Fatal(err)
	}
	f.Close()
	if got, err = ReadIndex(path); err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("torn tail not dropped: %v, %v", got, err)
	}

	// The same malformed content mid-file is corruption, not a torn tail.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(raw, "\n5\tok.ckpt\n"...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIndex(path); err == nil {
		t.Fatal("malformed interior line must be an error")
	}

	if _, err := ReadIndex(filepath.Join(t.TempDir(), "garbage")); err != nil {
		t.Fatalf("missing path: %v", err)
	}
	bad := filepath.Join(t.TempDir(), IndexFile)
	if err := os.WriteFile(bad, []byte("not an index\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIndex(bad); err == nil {
		t.Fatal("wrong header must be an error")
	}
}
