// Package checkpoint serializes classifiers — weights, pruning masks and
// batch-norm running statistics — to a compact self-describing binary
// stream, so a pre-trained universal model can be saved once and
// personalized many times (the deployment story of the paper).
//
// The format is versioned and endian-fixed (little endian):
//
//	magic "CRSP" | u32 version | u32 #params
//	per param: name | u32 #dims | dims | f64 weights | u8 hasMask | packed mask bits
//	u32 #bnStats; per stat: name | u32 len | f64 means | f64 vars
//
// Masks are bit-packed (8 elements per byte); weights are raw float64.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc64"
	"io"
	"math"

	"repro/internal/nn"
)

// crcTable is the CRC-64/ECMA table checksummed streams use; the sum
// covers everything after the version word, so any single flipped bit —
// including in raw float64 weights, which otherwise decode "successfully"
// into silently wrong logits — fails the load closed.
var crcTable = crc64.MakeTable(crc64.ECMA)

const (
	magic   = "CRSP"
	version = 1
)

// Save writes the classifier's parameters, masks and batch-norm running
// statistics to w.
func Save(w io.Writer, clf *nn.Classifier) error {
	bw := &errWriter{w: w}
	bw.bytes([]byte(magic))
	bw.u32(version)
	saveBody(bw, clf)
	return bw.err
}

// saveBody writes the classifier payload (params, masks, batch-norm running
// statistics) shared by the v1 stream and the v2 personalization record.
func saveBody(bw *errWriter, clf *nn.Classifier) {
	params := clf.Params()
	bw.u32(uint32(len(params)))
	for _, p := range params {
		bw.str(p.Name)
		bw.u32(uint32(len(p.W.Shape)))
		for _, d := range p.W.Shape {
			bw.u32(uint32(d))
		}
		for _, v := range p.W.Data {
			bw.f64(v)
		}
		if p.Mask == nil {
			bw.bytes([]byte{0})
		} else {
			bw.bytes([]byte{1})
			bw.bytes(packBits(p.Mask.Data))
		}
	}

	stats := bnStats(clf)
	bw.u32(uint32(len(stats)))
	for _, s := range stats {
		bw.str(s.name)
		bw.u32(uint32(len(s.mean)))
		for _, v := range s.mean {
			bw.f64(v)
		}
		for _, v := range s.variance {
			bw.f64(v)
		}
	}
}

// Load restores a checkpoint written by Save into clf, whose architecture
// must match (same parameters in the same order with the same shapes).
func Load(r io.Reader, clf *nn.Classifier) error {
	br := &errReader{r: r}
	head := br.bytes(4)
	if br.err != nil {
		return br.err
	}
	if string(head) != magic {
		return fmt.Errorf("checkpoint: bad magic %q", head)
	}
	if v := br.u32(); v != version {
		return fmt.Errorf("checkpoint: unsupported version %d (want %d)", v, version)
	}
	return loadBody(br, clf)
}

// loadBody restores the classifier payload written by saveBody.
func loadBody(br *errReader, clf *nn.Classifier) error {
	params := clf.Params()
	n := br.u32()
	if br.err != nil {
		return br.err
	}
	if int(n) != len(params) {
		return fmt.Errorf("checkpoint: %d stored params, model has %d", n, len(params))
	}
	for _, p := range params {
		name := br.str()
		if br.err != nil {
			return br.err
		}
		if name != p.Name {
			return fmt.Errorf("checkpoint: stored param %q does not match model param %q", name, p.Name)
		}
		nd := int(br.u32())
		if nd != len(p.W.Shape) {
			return fmt.Errorf("checkpoint: %s rank %d, model rank %d", name, nd, len(p.W.Shape))
		}
		for i := 0; i < nd; i++ {
			if d := int(br.u32()); d != p.W.Shape[i] {
				return fmt.Errorf("checkpoint: %s dim %d is %d, model has %d", name, i, d, p.W.Shape[i])
			}
		}
		for i := range p.W.Data {
			p.W.Data[i] = br.f64()
		}
		hasMask := br.bytes(1)
		if br.err != nil {
			return br.err
		}
		if hasMask[0] == 1 {
			bits := br.bytes((p.W.Len() + 7) / 8)
			if br.err != nil {
				return br.err
			}
			unpackBits(bits, p.EnsureMask().Data)
		} else {
			p.ClearMask()
		}
	}

	stats := bnStats(clf)
	ns := int(br.u32())
	if br.err != nil {
		return br.err
	}
	if ns != len(stats) {
		return fmt.Errorf("checkpoint: %d stored norm stats, model has %d", ns, len(stats))
	}
	for _, s := range stats {
		name := br.str()
		if name != s.name {
			return fmt.Errorf("checkpoint: norm stat %q does not match %q", name, s.name)
		}
		l := int(br.u32())
		if l != len(s.mean) {
			return fmt.Errorf("checkpoint: norm stat %s length %d, model has %d", name, l, len(s.mean))
		}
		for i := range s.mean {
			s.mean[i] = br.f64()
		}
		for i := range s.variance {
			s.variance[i] = br.f64()
		}
	}
	return br.err
}

// stat aliases one batch-norm layer's running buffers.
type stat struct {
	name     string
	mean     []float64
	variance []float64
}

// bnStats collects batch-norm running statistics in execution order.
func bnStats(clf *nn.Classifier) []stat {
	var out []stat
	nn.Walk(clf.Net, func(l nn.Layer) {
		if bn, ok := l.(*nn.BatchNorm2D); ok {
			out = append(out, stat{
				name:     bn.Gamma.Name, // unique per layer
				mean:     bn.RunMean.Data,
				variance: bn.RunVar.Data,
			})
		}
	})
	return out
}

// packBits packs a {0,1} float slice into bytes, LSB first.
func packBits(vals []float64) []byte {
	out := make([]byte, (len(vals)+7)/8)
	for i, v := range vals {
		if v != 0 {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out
}

// unpackBits expands packed bytes into a {0,1} float slice.
func unpackBits(bits []byte, dst []float64) {
	for i := range dst {
		if bits[i/8]&(1<<(i%8)) != 0 {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
}

// errWriter accumulates the first write error. When crc is set, every byte
// written also feeds it — checksummed formats (personalization v3, deltas)
// point it at a crc64 and emit the sum as a trailer.
type errWriter struct {
	w   io.Writer
	crc hash.Hash64
	err error
}

func (e *errWriter) bytes(b []byte) {
	if e.err != nil {
		return
	}
	if _, e.err = e.w.Write(b); e.err == nil && e.crc != nil {
		e.crc.Write(b)
	}
}

func (e *errWriter) u32(v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	e.bytes(buf[:])
}

func (e *errWriter) f64(v float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	e.bytes(buf[:])
}

func (e *errWriter) str(s string) {
	e.u32(uint32(len(s)))
	e.bytes([]byte(s))
}

// i32 writes a signed 32-bit value (two's complement in the u32 slot).
func (e *errWriter) i32(v int32) { e.u32(uint32(v)) }

func (e *errWriter) u64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	e.bytes(buf[:])
}

// errReader accumulates the first read error. Like errWriter, a non-nil
// crc sees every byte read, so checksum verification costs no second pass.
type errReader struct {
	r   io.Reader
	crc hash.Hash64
	err error
}

func (e *errReader) bytes(n int) []byte {
	if e.err != nil {
		return nil
	}
	if n < 0 || n > 1<<30 {
		e.err = errors.New("checkpoint: implausible field length")
		return nil
	}
	buf := make([]byte, n)
	if _, e.err = io.ReadFull(e.r, buf); e.err == nil && e.crc != nil {
		e.crc.Write(buf)
	}
	return buf
}

func (e *errReader) u32() uint32 {
	b := e.bytes(4)
	if e.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (e *errReader) f64() float64 {
	b := e.bytes(8)
	if e.err != nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// i32 reads a signed 32-bit value written by errWriter.i32.
func (e *errReader) i32() int32 { return int32(e.u32()) }

func (e *errReader) u64() uint64 {
	b := e.bytes(8)
	if e.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (e *errReader) str() string {
	n := e.u32()
	if e.err != nil {
		return ""
	}
	if n > 1<<20 {
		e.err = errors.New("checkpoint: implausible string length")
		return ""
	}
	return string(e.bytes(int(n)))
}
