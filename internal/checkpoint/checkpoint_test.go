package checkpoint

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// trainedModel returns a model with non-trivial weights, masks and BN stats.
func trainedModel(t *testing.T, f models.Family, seed int64) *nn.Classifier {
	t.Helper()
	clf := models.Build(f, rand.New(rand.NewSource(seed)), 6, 1)
	rng := rand.New(rand.NewSource(seed + 1))
	x := tensor.Randn(rng, 1, 4, 3, 8, 8)
	clf.TrainBatch(x, []int{0, 1, 2, 3})
	nn.ZeroGrad(clf.Params())
	// Mask part of the first prunable layer.
	m := clf.PrunableParams()[0].EnsureMask()
	for i := 0; i < m.Len(); i += 3 {
		m.Data[i] = 0
	}
	return clf
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, f := range []models.Family{models.ResNet, models.VGG, models.MobileNet, models.Transformer} {
		src := trainedModel(t, f, 10)
		var buf bytes.Buffer
		if err := Save(&buf, src); err != nil {
			t.Fatalf("%s: save: %v", f, err)
		}
		dst := models.Build(f, rand.New(rand.NewSource(99)), 6, 1)
		if err := Load(&buf, dst); err != nil {
			t.Fatalf("%s: load: %v", f, err)
		}
		// Outputs must match exactly (weights, masks and BN stats restored).
		rng := rand.New(rand.NewSource(11))
		x := tensor.Randn(rng, 1, 2, 3, 8, 8)
		ya := src.Logits(x, false)
		yb := dst.Logits(x, false)
		if !tensor.Equal(ya, yb, 0) {
			t.Fatalf("%s: restored model disagrees", f)
		}
	}
}

func TestLoadRejectsWrongArchitecture(t *testing.T) {
	src := trainedModel(t, models.ResNet, 12)
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := models.Build(models.VGG, rand.New(rand.NewSource(1)), 6, 1)
	if err := Load(&buf, dst); err == nil {
		t.Fatal("cross-architecture load accepted")
	}
}

func TestLoadRejectsCorruptHeader(t *testing.T) {
	dst := models.Build(models.ResNet, rand.New(rand.NewSource(2)), 6, 1)
	if err := Load(bytes.NewReader([]byte("NOPE....")), dst); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := Load(bytes.NewReader(nil), dst); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	src := trainedModel(t, models.ResNet, 13)
	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, len(full) / 3, len(full) - 1} {
		dst := models.Build(models.ResNet, rand.New(rand.NewSource(3)), 6, 1)
		if err := Load(bytes.NewReader(full[:cut]), dst); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestMaskAbsencePreserved(t *testing.T) {
	clf := models.Build(models.ResNet, rand.New(rand.NewSource(14)), 6, 1)
	var buf bytes.Buffer
	if err := Save(&buf, clf); err != nil {
		t.Fatal(err)
	}
	dst := models.Build(models.ResNet, rand.New(rand.NewSource(15)), 6, 1)
	// Give dst a mask that the load must clear.
	dst.PrunableParams()[0].EnsureMask()
	if err := Load(&buf, dst); err != nil {
		t.Fatal(err)
	}
	for _, p := range dst.Params() {
		if p.Mask != nil {
			t.Fatalf("mask on %s not cleared", p.Name)
		}
	}
}

func TestPackUnpackBits(t *testing.T) {
	vals := []float64{1, 0, 0, 1, 1, 1, 0, 1, 0, 1, 1}
	packed := packBits(vals)
	if len(packed) != 2 {
		t.Fatalf("packed %d bytes", len(packed))
	}
	out := make([]float64, len(vals))
	unpackBits(packed, out)
	for i := range vals {
		if out[i] != vals[i] {
			t.Fatalf("bit %d: %v != %v", i, out[i], vals[i])
		}
	}
}
