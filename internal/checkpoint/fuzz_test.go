package checkpoint

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/models"
	"repro/internal/pruner"
)

// FuzzLoad feeds arbitrary bytes to the checkpoint parser: it must always
// return an error or succeed — never panic or hang.
func FuzzLoad(f *testing.F) {
	// Seed with a valid checkpoint and some mutations.
	clf := models.Build(models.ResNet, rand.New(rand.NewSource(1)), 4, 1)
	var buf bytes.Buffer
	if err := Save(&buf, clf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("CRSP"))
	f.Add(valid[:len(valid)/2])
	corrupted := append([]byte(nil), valid...)
	if len(corrupted) > 20 {
		corrupted[10] ^= 0xFF
		corrupted[19] ^= 0x0F
	}
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		dst := models.Build(models.ResNet, rand.New(rand.NewSource(2)), 4, 1)
		// Must not panic; error or nil are both acceptable.
		_ = Load(bytes.NewReader(data), dst)
	})
}

// FuzzLoadPersonalization mirrors FuzzLoad for the v2 record parser: the
// snapshot store feeds it whatever survives on disk, so arbitrary bytes
// must produce an error or a record — never a panic or a hang. This is the
// fail-closed half of the warm-restart contract: Restore skips what this
// parser rejects.
func FuzzLoadPersonalization(f *testing.F) {
	clf := models.Build(models.ResNet, rand.New(rand.NewSource(3)), 4, 1)
	for _, p := range clf.PrunableParams() {
		m := p.EnsureMask()
		for j := range m.Data {
			m.Data[j] = float64(j % 2)
		}
	}
	rec := PersonalizationRecord{
		Key: "0,2", Classes: []int{0, 2}, Accuracy: 0.5,
		Report: pruner.Report{
			Method: "crisp", Target: 0.7, AchievedSparsity: 0.69, FLOPsRatio: 0.4,
			Layers:     []pruner.LayerStat{{Name: "l0", Rows: 8, Cols: 8, Sparsity: 0.5, KeptBlockCols: -1, GridCols: 2}},
			Iterations: []pruner.IterStat{{Iteration: 0, Kappa: 0.7, Sparsity: 0.69, Loss: 1.1}},
		},
	}
	var buf bytes.Buffer
	if err := SavePersonalization(&buf, rec, clf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("CRSP"))
	f.Add(valid[:len(valid)/3])
	f.Add(valid[:len(valid)-1])
	corrupted := append([]byte(nil), valid...)
	if len(corrupted) > 30 {
		corrupted[9] ^= 0xFF  // key length
		corrupted[29] ^= 0x0F // somewhere in the metadata
	}
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		dst := models.Build(models.ResNet, rand.New(rand.NewSource(4)), 4, 1)
		_, _ = LoadPersonalization(bytes.NewReader(data), dst)
	})
}
