package checkpoint

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/models"
)

// FuzzLoad feeds arbitrary bytes to the checkpoint parser: it must always
// return an error or succeed — never panic or hang.
func FuzzLoad(f *testing.F) {
	// Seed with a valid checkpoint and some mutations.
	clf := models.Build(models.ResNet, rand.New(rand.NewSource(1)), 4, 1)
	var buf bytes.Buffer
	if err := Save(&buf, clf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("CRSP"))
	f.Add(valid[:len(valid)/2])
	corrupted := append([]byte(nil), valid...)
	if len(corrupted) > 20 {
		corrupted[10] ^= 0xFF
		corrupted[19] ^= 0x0F
	}
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		dst := models.Build(models.ResNet, rand.New(rand.NewSource(2)), 4, 1)
		// Must not panic; error or nil are both acceptable.
		_ = Load(bytes.NewReader(data), dst)
	})
}
