package checkpoint

import (
	"bytes"
	"fmt"
	"hash/crc64"

	"repro/internal/nn"
)

// Model deltas are the warm tier's in-memory record: one tenant's
// personalized state expressed against the shared universal model instead
// of as a full weight copy. Per parameter the delta stores the pruning mask
// (bit-packed) plus only the weight values the rebuilt engine can actually
// observe:
//
//	magic "CRSD" | u32 version | u32 #params
//	per param: name | u8 hasMask (+ packed mask bits) | u8 mode
//	  mode 0 (same):  nothing — every observable value equals the base
//	  mode 1 (kept):  u32 count | f64 kept-position values, in index order
//	  mode 2 (dense): f64 full weight tensor (unmasked param that diverged)
//	u32 #bnStats | per stat: name | u8 mode(0|2) | [f64 means | f64 vars]
//	u64 crc64/ECMA over everything after the version word (since v2)
//
// The delta is exact where it matters and deliberately lossy where it
// cannot matter: masked-out (pruned) weight values are not stored, and
// ApplyModelDelta rebuilds them from the universal base. The effective
// weights W ⊙ Mask — the only thing inference, plan compilation and
// deterministic int8 quantization ever read — are reproduced bit-for-bit,
// so a rebuilt engine is bit-identical on the float path and
// QuantSignature-identical on the int8 path. Gradients are not stored
// (serving never trains); at typical CRISP sparsity the record is a small
// fraction of a full model copy.

const (
	deltaMagic   = "CRSD"
	deltaVersion = 2 // v2 added the crc64 trailer

	deltaSame  = 0
	deltaKept  = 1
	deltaDense = 2
)

// EncodeModelDelta serializes tenant's personalized state as a delta over
// base. The two classifiers must share an architecture (same parameters in
// the same order with the same shapes).
func EncodeModelDelta(base, tenant *nn.Classifier) ([]byte, error) {
	bp, tp := base.Params(), tenant.Params()
	if len(bp) != len(tp) {
		return nil, fmt.Errorf("checkpoint: delta across architectures: %d vs %d params", len(bp), len(tp))
	}
	var buf bytes.Buffer
	bw := &errWriter{w: &buf}
	bw.bytes([]byte(deltaMagic))
	bw.u32(deltaVersion)
	bw.crc = crc64.New(crcTable)
	bw.u32(uint32(len(tp)))
	for i, p := range tp {
		b := bp[i]
		if p.Name != b.Name || p.W.Len() != b.W.Len() {
			return nil, fmt.Errorf("checkpoint: delta param %d: %q/%d vs base %q/%d", i, p.Name, p.W.Len(), b.Name, b.W.Len())
		}
		bw.str(p.Name)
		if p.Mask == nil {
			bw.bytes([]byte{0})
			if equalSlices(p.W.Data, b.W.Data) {
				bw.bytes([]byte{deltaSame})
			} else {
				bw.bytes([]byte{deltaDense})
				for _, v := range p.W.Data {
					bw.f64(v)
				}
			}
			continue
		}
		bw.bytes([]byte{1})
		bw.bytes(packBits(p.Mask.Data))
		kept, same := 0, true
		for j, m := range p.Mask.Data {
			if m != 0 {
				kept++
				if p.W.Data[j] != b.W.Data[j] {
					same = false
				}
			}
		}
		if same {
			bw.bytes([]byte{deltaSame})
			continue
		}
		bw.bytes([]byte{deltaKept})
		bw.u32(uint32(kept))
		for j, m := range p.Mask.Data {
			if m != 0 {
				bw.f64(p.W.Data[j])
			}
		}
	}

	bs, ts := bnStats(base), bnStats(tenant)
	if len(bs) != len(ts) {
		return nil, fmt.Errorf("checkpoint: delta norm stats: %d vs base %d", len(ts), len(bs))
	}
	bw.u32(uint32(len(ts)))
	for i, s := range ts {
		if s.name != bs[i].name || len(s.mean) != len(bs[i].mean) {
			return nil, fmt.Errorf("checkpoint: delta norm stat %d: %q vs base %q", i, s.name, bs[i].name)
		}
		bw.str(s.name)
		if equalSlices(s.mean, bs[i].mean) && equalSlices(s.variance, bs[i].variance) {
			bw.bytes([]byte{deltaSame})
			continue
		}
		bw.bytes([]byte{deltaDense})
		for _, v := range s.mean {
			bw.f64(v)
		}
		for _, v := range s.variance {
			bw.f64(v)
		}
	}
	sum := uint64(0)
	if bw.err == nil {
		sum = bw.crc.Sum64()
	}
	bw.crc = nil
	bw.u64(sum)
	if bw.err != nil {
		return nil, bw.err
	}
	return buf.Bytes(), nil
}

// ApplyModelDelta rebuilds the tenant state encoded by EncodeModelDelta
// into dst, reading unstored values from base: dst's weights become the
// universal weights overlaid with the delta's kept/dense values, its masks
// become the stored masks, and its norm statistics the stored (or
// universal) ones. dst and base must share the encoder's architecture.
func ApplyModelDelta(delta []byte, base, dst *nn.Classifier) error {
	br := &errReader{r: bytes.NewReader(delta)}
	head := br.bytes(4)
	if br.err != nil {
		return br.err
	}
	if string(head) != deltaMagic {
		return fmt.Errorf("checkpoint: delta: bad magic %q", head)
	}
	if v := br.u32(); v != deltaVersion {
		return fmt.Errorf("checkpoint: delta: unsupported version %d (want %d)", v, deltaVersion)
	}
	br.crc = crc64.New(crcTable)
	bp, dp := base.Params(), dst.Params()
	if len(bp) != len(dp) {
		return fmt.Errorf("checkpoint: delta across architectures: %d vs %d params", len(bp), len(dp))
	}
	n := int(br.u32())
	if br.err != nil {
		return br.err
	}
	if n != len(dp) {
		return fmt.Errorf("checkpoint: delta stores %d params, model has %d", n, len(dp))
	}
	for i, p := range dp {
		b := bp[i]
		if p.W.Len() != b.W.Len() {
			return fmt.Errorf("checkpoint: delta param %q: dst/base shapes differ", p.Name)
		}
		name := br.str()
		if br.err != nil {
			return br.err
		}
		if name != p.Name {
			return fmt.Errorf("checkpoint: delta param %q does not match model param %q", name, p.Name)
		}
		hasMask := br.bytes(1)
		if br.err != nil {
			return br.err
		}
		if hasMask[0] == 1 {
			bits := br.bytes((p.W.Len() + 7) / 8)
			if br.err != nil {
				return br.err
			}
			unpackBits(bits, p.EnsureMask().Data)
		} else {
			p.ClearMask()
		}
		copy(p.W.Data, b.W.Data)
		mode := br.bytes(1)
		if br.err != nil {
			return br.err
		}
		switch mode[0] {
		case deltaSame:
		case deltaKept:
			if p.Mask == nil {
				return fmt.Errorf("checkpoint: delta param %q: kept values without a mask", name)
			}
			count := int(br.u32())
			kept := 0
			for _, m := range p.Mask.Data {
				if m != 0 {
					kept++
				}
			}
			if count != kept {
				return fmt.Errorf("checkpoint: delta param %q: %d stored values for %d kept positions", name, count, kept)
			}
			for j, m := range p.Mask.Data {
				if m != 0 {
					p.W.Data[j] = br.f64()
				}
			}
		case deltaDense:
			for j := range p.W.Data {
				p.W.Data[j] = br.f64()
			}
		default:
			return fmt.Errorf("checkpoint: delta param %q: unknown mode %d", name, mode[0])
		}
		if br.err != nil {
			return br.err
		}
	}

	bs, ds := bnStats(base), bnStats(dst)
	if len(bs) != len(ds) {
		return fmt.Errorf("checkpoint: delta norm stats: base %d vs dst %d", len(bs), len(ds))
	}
	ns := int(br.u32())
	if br.err != nil {
		return br.err
	}
	if ns != len(ds) {
		return fmt.Errorf("checkpoint: delta stores %d norm stats, model has %d", ns, len(ds))
	}
	for i, s := range ds {
		name := br.str()
		if name != s.name {
			return fmt.Errorf("checkpoint: delta norm stat %q does not match %q", name, s.name)
		}
		if len(s.mean) != len(bs[i].mean) {
			return fmt.Errorf("checkpoint: delta norm stat %q: dst/base lengths differ", name)
		}
		mode := br.bytes(1)
		if br.err != nil {
			return br.err
		}
		switch mode[0] {
		case deltaSame:
			copy(s.mean, bs[i].mean)
			copy(s.variance, bs[i].variance)
		case deltaDense:
			for j := range s.mean {
				s.mean[j] = br.f64()
			}
			for j := range s.variance {
				s.variance[j] = br.f64()
			}
		default:
			return fmt.Errorf("checkpoint: delta norm stat %q: unknown mode %d", name, mode[0])
		}
	}
	if br.err != nil {
		return br.err
	}
	sum := br.crc.Sum64()
	br.crc = nil
	want := br.u64()
	if br.err != nil {
		return br.err
	}
	if sum != want {
		return fmt.Errorf("checkpoint: delta checksum mismatch (stored %016x, computed %016x)", want, sum)
	}
	return nil
}

// equalSlices reports elementwise equality (bit-level intent: weights are
// finite, so == matches bit equality here).
func equalSlices(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if b[i] != v {
			return false
		}
	}
	return true
}
