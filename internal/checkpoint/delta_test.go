package checkpoint

import (
	"math/rand"
	"testing"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// deltaPair returns a universal base and a diverged tenant: cloned weights,
// a pruning mask on the first prunable layer, fine-tuned kept weights and
// perturbed BN statistics — every delta mode exercised at once.
func deltaPair(t *testing.T, f models.Family) (base, tenant *nn.Classifier) {
	t.Helper()
	base = trainedModel(t, f, 20)
	tenant = models.Build(f, rand.New(rand.NewSource(77)), 6, 1)
	base.CloneWeightsTo(tenant)
	// Mask a second layer and perturb its kept weights (deltaKept); leave
	// other params untouched (deltaSame).
	pp := tenant.PrunableParams()
	p := pp[len(pp)-1]
	m := p.EnsureMask()
	for i := 0; i < m.Len(); i += 2 {
		m.Data[i] = 0
	}
	for i, mv := range m.Data {
		if mv != 0 {
			p.W.Data[i] += 0.125
		}
	}
	// Perturb one unmasked param densely (deltaDense) and one BN stat.
	for _, q := range tenant.Params() {
		if q.Mask == nil {
			for i := range q.W.Data {
				q.W.Data[i] += 0.0625
			}
			break
		}
	}
	nn.Walk(tenant.Net, func(l nn.Layer) {
		if bn, ok := l.(*nn.BatchNorm2D); ok {
			bn.RunMean.Data[0] += 0.25
		}
	})
	return base, tenant
}

// TestModelDeltaRoundTrip: applying a delta to a fresh clone must reproduce
// the tenant's observable behaviour exactly — identical logits, identical
// masks — across families.
func TestModelDeltaRoundTrip(t *testing.T) {
	for _, f := range []models.Family{models.ResNet, models.VGG, models.MobileNet, models.Transformer} {
		base, tenant := deltaPair(t, f)
		delta, err := EncodeModelDelta(base, tenant)
		if err != nil {
			t.Fatalf("%s: encode: %v", f, err)
		}
		dst := models.Build(f, rand.New(rand.NewSource(88)), 6, 1)
		if err := ApplyModelDelta(delta, base, dst); err != nil {
			t.Fatalf("%s: apply: %v", f, err)
		}
		x := tensor.Randn(rand.New(rand.NewSource(21)), 1, 2, 3, 8, 8)
		if !tensor.Equal(tenant.Logits(x, false), dst.Logits(x, false), 0) {
			t.Fatalf("%s: rebuilt tenant disagrees with original", f)
		}
		// Masks and effective weights must match exactly (the engine
		// compiles from these); raw pruned-position weights may legally
		// revert to base.
		tp, dp := tenant.Params(), dst.Params()
		for i, p := range tp {
			d := dp[i]
			if (p.Mask == nil) != (d.Mask == nil) {
				t.Fatalf("%s: %s mask presence diverged", f, p.Name)
			}
			if !tensor.Equal(p.Effective(), d.Effective(), 0) {
				t.Fatalf("%s: %s effective weights diverged", f, p.Name)
			}
		}
	}
}

// TestModelDeltaSizeScalesWithMask: a sparsely-masked fine-tuned tenant's
// delta must store only kept values — far smaller than a full weight copy.
func TestModelDeltaSizeScalesWithMask(t *testing.T) {
	base := trainedModel(t, models.ResNet, 30)
	tenant := models.Build(models.ResNet, rand.New(rand.NewSource(31)), 6, 1)
	base.CloneWeightsTo(tenant)
	var full int64
	// Mask every prunable param to 25% kept and perturb every kept weight,
	// the worst case for the kept-value mode.
	for _, p := range tenant.PrunableParams() {
		m := p.EnsureMask()
		for i := range m.Data {
			if i%4 != 0 {
				m.Data[i] = 0
			}
		}
		for i, mv := range m.Data {
			if mv != 0 {
				p.W.Data[i] += 0.5
			}
		}
	}
	for _, p := range tenant.Params() {
		full += int64(p.W.Len()) * 8
	}
	delta, err := EncodeModelDelta(base, tenant)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(delta)) >= full/2 {
		t.Fatalf("delta %d bytes vs %d full weights: kept-value mode not engaged", len(delta), full)
	}
	// An undiverged clone encodes to almost nothing (headers + masks only).
	clean := models.Build(models.ResNet, rand.New(rand.NewSource(32)), 6, 1)
	base.CloneWeightsTo(clean)
	small, err := EncodeModelDelta(base, clean)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(small)) >= int64(len(delta))/2 {
		t.Fatalf("clean delta %d bytes vs diverged %d: same-mode not engaged", len(small), len(delta))
	}
}

// TestModelDeltaRejectsGarbage: corrupt headers, truncation, and
// mask-inconsistent records must fail loudly, never partially apply.
func TestModelDeltaRejectsGarbage(t *testing.T) {
	base, tenant := deltaPair(t, models.ResNet)
	delta, err := EncodeModelDelta(base, tenant)
	if err != nil {
		t.Fatal(err)
	}
	dst := models.Build(models.ResNet, rand.New(rand.NewSource(89)), 6, 1)
	if err := ApplyModelDelta([]byte("XXXX garbage"), base, dst); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := ApplyModelDelta(delta[:len(delta)/2], base, dst); err == nil {
		t.Fatal("truncated delta accepted")
	}
	other := models.Build(models.VGG, rand.New(rand.NewSource(90)), 6, 1)
	if err := ApplyModelDelta(delta, base, other); err == nil {
		t.Fatal("cross-architecture apply accepted")
	}
}
