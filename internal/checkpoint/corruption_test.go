package checkpoint

// Systematic corruption suite for the checksummed formats. The contract the
// crc64 trailer buys (personalization v3, delta v2): ANY single flipped bit
// anywhere in the stream — header, counts, strings, raw float payload, the
// trailer itself — and any truncation must surface as a load error, never a
// panic and never a silently different model. Before the trailer, flips
// inside the f64 payload parsed cleanly and changed tenant logits.

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/models"
)

// corruptionOffsets picks the byte offsets a corruption table exercises:
// every byte of the structured prefix, every byte around the trailer, and a
// systematic stride through the payload between them (full coverage would
// be n load attempts for an n-byte record; the stride keeps the suite fast
// while still hitting every region).
func corruptionOffsets(n int) []int {
	seen := make(map[int]bool)
	var offs []int
	add := func(i int) {
		if i >= 0 && i < n && !seen[i] {
			seen[i] = true
			offs = append(offs, i)
		}
	}
	for i := 0; i < 72; i++ {
		add(i)
	}
	for i := n - 24; i < n; i++ {
		add(i)
	}
	step := n / 192
	if step < 1 {
		step = 1
	}
	for i := 0; i < n; i += step {
		add(i)
	}
	return offs
}

func TestPersonalizationBitFlipsFailClosed(t *testing.T) {
	src := prunedModel(31)
	var buf bytes.Buffer
	if err := SavePersonalization(&buf, testRecord(), src); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	dst := models.Build(models.ResNet, rand.New(rand.NewSource(32)), 4, 1)
	if _, err := LoadPersonalization(bytes.NewReader(valid), dst); err != nil {
		t.Fatalf("pristine record failed to load: %v", err)
	}

	for _, off := range corruptionOffsets(len(valid)) {
		for _, bit := range []uint{0, 7} {
			mut := append([]byte(nil), valid...)
			mut[off] ^= 1 << bit
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("flip at byte %d bit %d: panic %v", off, bit, r)
					}
				}()
				if _, err := LoadPersonalization(bytes.NewReader(mut), dst); err == nil {
					t.Errorf("flip at byte %d bit %d of %d loaded without error", off, bit, len(valid))
				}
			}()
		}
	}
}

func TestPersonalizationTruncationsFailClosed(t *testing.T) {
	src := prunedModel(33)
	var buf bytes.Buffer
	if err := SavePersonalization(&buf, testRecord(), src); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	dst := models.Build(models.ResNet, rand.New(rand.NewSource(34)), 4, 1)

	for _, cut := range corruptionOffsets(len(valid)) {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("truncation at %d: panic %v", cut, r)
				}
			}()
			if _, err := LoadPersonalization(bytes.NewReader(valid[:cut]), dst); err == nil {
				t.Errorf("truncation at %d/%d bytes loaded without error", cut, len(valid))
			}
		}()
	}
}

func TestDeltaBitFlipsFailClosed(t *testing.T) {
	base, tenant := deltaPair(t, models.ResNet)
	valid, err := EncodeModelDelta(base, tenant)
	if err != nil {
		t.Fatal(err)
	}
	dst := models.Build(models.ResNet, rand.New(rand.NewSource(35)), 6, 1)
	if err := ApplyModelDelta(valid, base, dst); err != nil {
		t.Fatalf("pristine delta failed to apply: %v", err)
	}

	for _, off := range corruptionOffsets(len(valid)) {
		for _, bit := range []uint{0, 7} {
			mut := append([]byte(nil), valid...)
			mut[off] ^= 1 << bit
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("flip at byte %d bit %d: panic %v", off, bit, r)
					}
				}()
				if err := ApplyModelDelta(mut, base, dst); err == nil {
					t.Errorf("flip at byte %d bit %d of %d applied without error", off, bit, len(valid))
				}
			}()
		}
	}
}

func TestDeltaTruncationsFailClosed(t *testing.T) {
	base, tenant := deltaPair(t, models.ResNet)
	valid, err := EncodeModelDelta(base, tenant)
	if err != nil {
		t.Fatal(err)
	}
	dst := models.Build(models.ResNet, rand.New(rand.NewSource(36)), 6, 1)

	for _, cut := range corruptionOffsets(len(valid)) {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("truncation at %d: panic %v", cut, r)
				}
			}()
			if err := ApplyModelDelta(valid[:cut], base, dst); err == nil {
				t.Errorf("truncation at %d/%d bytes applied without error", cut, len(valid))
			}
		}()
	}
}

// TestLegacyDowngradeRejected pins the downgrade hole shut: corrupting a
// v3 record's version word into the legacy value must NOT yield a
// checksum-free successful load.
func TestLegacyDowngradeRejected(t *testing.T) {
	src := prunedModel(37)
	var buf bytes.Buffer
	if err := SavePersonalization(&buf, testRecord(), src); err != nil {
		t.Fatal(err)
	}
	mut := buf.Bytes()
	mut[4] ^= 1 // little-endian version word: 3 -> 2
	dst := models.Build(models.ResNet, rand.New(rand.NewSource(38)), 4, 1)
	if _, err := LoadPersonalization(bytes.NewReader(mut), dst); err == nil {
		t.Fatal("v3 record downgraded to v2 loaded without its checksum being checked")
	}
}
