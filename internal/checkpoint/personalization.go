package checkpoint

// Personalization records are the durable form of one serving-layer tenant
// model: the pruned classifier (weights, masks, batch-norm statistics)
// together with the class set it was pruned for, the pruning report and the
// measured held-out accuracy. They are what the personalization server
// snapshots to disk so a restart can reload engines instead of re-running
// the prune+fine-tune pipeline per tenant.
//
// The record is version 3 of the checkpoint stream (same magic, same
// endian-fixed primitives):
//
//	magic "CRSP" | u32 3
//	| key | u32 #classes | u32 classes (sorted ids)
//	| f64 accuracy
//	| report: method | f64 target | f64 achieved | f64 flopsRatio
//	|   u32 #layers;  per layer: name | u32 rows | u32 cols | f64 sparsity
//	|                            | i32 keptBlockCols | u32 gridCols
//	|   u32 #iters;   per iter:  u32 iteration | f64 kappa | f64 sparsity | f64 loss
//	| classifier body (identical encoding to the v1 payload)
//	| u64 crc64/ECMA over everything after the version word
//
// The trailing checksum is what makes disk corruption fail closed: a bit
// flipped inside a raw float64 weight parses fine and would silently change
// the tenant's logits; with the trailer, any flip anywhere in the record is
// a load error (and the serving layer quarantines the record).
//
// Version 2 records (identical, minus the checksum trailer) still load —
// fleets carry snapshots written before the trailer existed. Version 1
// streams (plain classifiers written by Save) remain loadable by Load;
// LoadPersonalization rejects them, and Load rejects v2+ records, so the
// two cannot be confused silently.

import (
	"fmt"
	"hash/crc64"
	"io"

	"repro/internal/nn"
	"repro/internal/pruner"
)

const (
	personalizationVersion = 3
	// legacyPersonalizationVersion is the pre-checksum record format,
	// accepted on load for snapshots written by older servers.
	legacyPersonalizationVersion = 2
)

// maxCount bounds every repeated-field count in a v2 record. Real records
// have a handful of classes, layers and iterations; anything near the bound
// is corruption, and rejecting it early keeps hostile inputs from driving
// large allocation or parse loops.
const maxCount = 1 << 20

// PersonalizationRecord is the serializable metadata of one personalized
// model; the pruned classifier itself rides along in the same stream.
type PersonalizationRecord struct {
	// Key is the canonical cache key (sorted, deduplicated class ids joined
	// by commas), as produced by the serving layer.
	Key string
	// Classes is the canonical class set.
	Classes []int
	// Accuracy is top-1 accuracy on held-out samples of the classes.
	Accuracy float64
	// Report is the pruning run summary.
	Report pruner.Report
}

// SavePersonalization writes a version-3 record: rec's metadata followed by
// the pruned classifier's full payload and a crc64 trailer.
func SavePersonalization(w io.Writer, rec PersonalizationRecord, clf *nn.Classifier) error {
	bw := &errWriter{w: w}
	bw.bytes([]byte(magic))
	bw.u32(personalizationVersion)
	bw.crc = crc64.New(crcTable)

	bw.str(rec.Key)
	bw.u32(uint32(len(rec.Classes)))
	for _, c := range rec.Classes {
		bw.u32(uint32(c))
	}
	bw.f64(rec.Accuracy)

	r := rec.Report
	bw.str(r.Method)
	bw.f64(r.Target)
	bw.f64(r.AchievedSparsity)
	bw.f64(r.FLOPsRatio)
	bw.u32(uint32(len(r.Layers)))
	for _, l := range r.Layers {
		bw.str(l.Name)
		bw.u32(uint32(l.Rows))
		bw.u32(uint32(l.Cols))
		bw.f64(l.Sparsity)
		bw.i32(int32(l.KeptBlockCols)) // −1 marks block-exempt layers
		bw.u32(uint32(l.GridCols))
	}
	bw.u32(uint32(len(r.Iterations)))
	for _, it := range r.Iterations {
		bw.u32(uint32(it.Iteration))
		bw.f64(it.Kappa)
		bw.f64(it.Sparsity)
		bw.f64(it.Loss)
	}

	saveBody(bw, clf)
	var sum uint64
	if bw.err == nil {
		sum = bw.crc.Sum64()
	}
	bw.crc = nil // the trailer itself is not part of the sum
	bw.u64(sum)
	return bw.err
}

// LoadPersonalization restores a record written by SavePersonalization,
// loading the pruned classifier into clf (which must be architecturally
// identical to the saved one). Corrupted or truncated streams return an
// error and may leave clf partially written; callers restore into a fresh
// clone, never a live model.
func LoadPersonalization(r io.Reader, clf *nn.Classifier) (PersonalizationRecord, error) {
	var rec PersonalizationRecord
	br := &errReader{r: r}
	head := br.bytes(4)
	if br.err != nil {
		return rec, br.err
	}
	if string(head) != magic {
		return rec, fmt.Errorf("checkpoint: bad magic %q", head)
	}
	v := br.u32()
	if br.err == nil && v != personalizationVersion && v != legacyPersonalizationVersion {
		return rec, fmt.Errorf("checkpoint: unsupported personalization version %d (want %d)", v, personalizationVersion)
	}
	if v == personalizationVersion {
		br.crc = crc64.New(crcTable)
	}

	rec.Key = br.str()
	nc := int(br.u32())
	if br.err != nil {
		return rec, br.err
	}
	if nc <= 0 || nc > maxCount {
		return rec, fmt.Errorf("checkpoint: implausible class count %d", nc)
	}
	rec.Classes = make([]int, nc)
	for i := range rec.Classes {
		rec.Classes[i] = int(br.u32())
	}
	rec.Accuracy = br.f64()

	rec.Report.Method = br.str()
	rec.Report.Target = br.f64()
	rec.Report.AchievedSparsity = br.f64()
	rec.Report.FLOPsRatio = br.f64()
	nl := int(br.u32())
	if br.err != nil {
		return rec, br.err
	}
	if nl < 0 || nl > maxCount {
		return rec, fmt.Errorf("checkpoint: implausible layer count %d", nl)
	}
	rec.Report.Layers = make([]pruner.LayerStat, nl)
	for i := range rec.Report.Layers {
		l := &rec.Report.Layers[i]
		l.Name = br.str()
		l.Rows = int(br.u32())
		l.Cols = int(br.u32())
		l.Sparsity = br.f64()
		l.KeptBlockCols = int(br.i32())
		l.GridCols = int(br.u32())
		if br.err != nil {
			return rec, br.err
		}
	}
	ni := int(br.u32())
	if br.err != nil {
		return rec, br.err
	}
	if ni < 0 || ni > maxCount {
		return rec, fmt.Errorf("checkpoint: implausible iteration count %d", ni)
	}
	rec.Report.Iterations = make([]pruner.IterStat, ni)
	for i := range rec.Report.Iterations {
		it := &rec.Report.Iterations[i]
		it.Iteration = int(br.u32())
		it.Kappa = br.f64()
		it.Sparsity = br.f64()
		it.Loss = br.f64()
		if br.err != nil {
			return rec, br.err
		}
	}

	if err := loadBody(br, clf); err != nil {
		return rec, err
	}
	if v == personalizationVersion {
		sum := br.crc.Sum64()
		br.crc = nil
		want := br.u64()
		if br.err != nil {
			return rec, br.err
		}
		if sum != want {
			return rec, fmt.Errorf("checkpoint: personalization record checksum mismatch (stored %016x, computed %016x)", want, sum)
		}
	} else {
		// A legacy record ends exactly at the body. Trailing bytes mean this
		// is really a v3 stream whose version word was corrupted into 2 —
		// accepting it would silently skip the checksum (a downgrade hole),
		// so refuse instead.
		var one [1]byte
		if n, _ := io.ReadFull(br.r, one[:]); n != 0 {
			return rec, fmt.Errorf("checkpoint: trailing bytes after legacy personalization record")
		}
	}
	return rec, nil
}
