package tensor

import (
	"math/rand"
	"testing"
)

// dirty returns a tensor pre-filled with sentinel garbage, for checking
// that Into kernels overwrite every element (the arena contract).
func dirty(shape ...int) *Tensor {
	return Full(1e30, shape...)
}

func TestTransposeInto(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Shapes straddling the cache-block edge: smaller, exact multiples,
	// ragged remainders, and degenerate single-row/column cases.
	for _, s := range [][2]int{{2, 3}, {32, 32}, {33, 65}, {100, 7}, {1, 129}, {64, 1}} {
		m := Randn(rng, 1, s[0], s[1])
		want := New(s[1], s[0])
		for i := 0; i < s[0]; i++ {
			for j := 0; j < s[1]; j++ {
				want.Data[j*s[0]+i] = m.Data[i*s[1]+j]
			}
		}
		if got := Transpose(m); !Equal(got, want, 0) {
			t.Fatalf("Transpose %v wrong", s)
		}
		if got := TransposeInto(m, dirty(s[1], s[0])); !Equal(got, want, 0) {
			t.Fatalf("TransposeInto %v left dirty elements", s)
		}
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := Randn(rng, 1, 37, 53)
	if !Equal(Transpose(Transpose(m)), m, 0) {
		t.Fatal("double transpose is not the identity")
	}
}

func TestTransposePanicsOnBadShapes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rank-3 input must panic")
		}
	}()
	Transpose(New(2, 3, 4))
}

func TestTransposeIntoPanicsOnDstMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong dst shape must panic")
		}
	}()
	TransposeInto(New(2, 3), New(2, 3))
}

func TestConcatInto(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{5, 6}, 1, 2)
	want := Concat([]*Tensor{a, b})
	got := ConcatInto([]*Tensor{a, b}, dirty(3, 2))
	if !Equal(got, want, 0) {
		t.Fatalf("ConcatInto %v vs Concat %v", got.Data, want.Data)
	}
}

func TestConcatIntoPanicsOnDstMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong dst shape must panic")
		}
	}()
	ConcatInto([]*Tensor{New(2, 2)}, New(3, 2))
}

// TestIm2ColIntoOverwritesDirtyBuffer sweeps conv geometries — strides,
// pads, kernels wider than the stride — and checks Im2ColInto into a
// garbage buffer matches Im2Col into a fresh one, i.e. padding taps are
// written as explicit zeros.
func TestIm2ColIntoOverwritesDirtyBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	geoms := []ConvGeom{
		{InC: 2, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 2, Pad: 1},
		{InC: 3, InH: 7, InW: 5, KH: 5, KW: 5, Stride: 1, Pad: 2},
		{InC: 2, InH: 6, InW: 6, KH: 1, KW: 1, Stride: 2, Pad: 0},
		{InC: 1, InH: 4, InW: 4, KH: 4, KW: 4, Stride: 4, Pad: 0},
		{InC: 1, InH: 5, InW: 9, KH: 3, KW: 1, Stride: 3, Pad: 2},
	}
	for _, g := range geoms {
		if err := g.Validate(); err != nil {
			t.Fatalf("bad test geometry %+v: %v", g, err)
		}
		for _, n := range []int{1, 4} {
			x := Randn(rng, 1, n, g.InC, g.InH, g.InW)
			want := Im2Col(x, g)
			got := Im2ColInto(x, g, dirty(g.InC*g.KH*g.KW, n*g.OutH()*g.OutW()))
			if !Equal(got, want, 0) {
				t.Fatalf("geometry %+v batch %d: Im2ColInto differs from Im2Col", g, n)
			}
		}
	}
}
