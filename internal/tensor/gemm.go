package tensor

import "fmt"

// MatMul computes C = A·B for A (m×k) and B (k×n), returning a new m×n
// tensor. Both inputs must be rank-2.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 tensors, got %v and %v", a.Shape, b.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch: %v vs %v", a.Shape, b.Shape))
	}
	c := New(m, n)
	Gemm(false, false, m, n, k, 1, a.Data, b.Data, 0, c.Data)
	return c
}

// Gemm computes C = alpha*op(A)*op(B) + beta*C over raw row-major buffers.
// op(A) is m×k and op(B) is k×n; transA/transB select whether the stored
// buffer is the transpose of the operand. C must have length m*n.
//
// The row loop fans out over the persistent kernel worker pool
// (ParallelRows) when the problem is large enough to amortize the handoff;
// no goroutines are spawned per call.
func Gemm(transA, transB bool, m, n, k int, alpha float64, a, b []float64, beta float64, c []float64) {
	if len(c) != m*n {
		panic(fmt.Sprintf("tensor: Gemm output length %d != %d*%d", len(c), m, n))
	}
	wantA := m * k
	wantB := k * n
	if len(a) != wantA || len(b) != wantB {
		panic(fmt.Sprintf("tensor: Gemm operand sizes %d,%d do not match m=%d n=%d k=%d", len(a), len(b), m, n, k))
	}
	if beta == 0 {
		for i := range c {
			c[i] = 0
		}
	} else if beta != 1 {
		for i := range c {
			c[i] *= beta
		}
	}
	if alpha == 0 || m == 0 || n == 0 || k == 0 {
		return
	}

	// The serial path calls gemmRows directly: a closure here would escape
	// into the worker pool's task queue and heap-allocate on every call,
	// even for the small GEMMs that never fan out.
	if m*n*k < parallelThreshold {
		gemmRows(transA, transB, m, n, k, alpha, a, b, c, 0, m)
		return
	}
	ParallelRows(m, m*n*k, func(i0, i1 int) {
		gemmRows(transA, transB, m, n, k, alpha, a, b, c, i0, i1)
	})
}

// gemmRows computes output rows [i0, i1) of C = alpha*op(A)*op(B) + C.
func gemmRows(transA, transB bool, m, n, k int, alpha float64, a, b, c []float64, i0, i1 int) {
	switch {
	case !transA && !transB:
		// A[i][l] * B[l][j]: stream B rows for cache friendliness.
		for i := i0; i < i1; i++ {
			ci := c[i*n : (i+1)*n]
			ai := a[i*k : (i+1)*k]
			for l := 0; l < k; l++ {
				av := alpha * ai[l]
				if av == 0 {
					continue
				}
				bl := b[l*n : (l+1)*n]
				for j, bv := range bl {
					ci[j] += av * bv
				}
			}
		}
	case transA && !transB:
		// A stored k×m: A[l][i].
		for i := i0; i < i1; i++ {
			ci := c[i*n : (i+1)*n]
			for l := 0; l < k; l++ {
				av := alpha * a[l*m+i]
				if av == 0 {
					continue
				}
				bl := b[l*n : (l+1)*n]
				for j, bv := range bl {
					ci[j] += av * bv
				}
			}
		}
	case !transA && transB:
		// B stored n×k: B[j][l]; dot products.
		for i := i0; i < i1; i++ {
			ai := a[i*k : (i+1)*k]
			ci := c[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := b[j*k : (j+1)*k]
				s := 0.0
				for l, av := range ai {
					s += av * bj[l]
				}
				ci[j] += alpha * s
			}
		}
	default: // transA && transB
		for i := i0; i < i1; i++ {
			ci := c[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				s := 0.0
				for l := 0; l < k; l++ {
					s += a[l*m+i] * b[j*k+l]
				}
				ci[j] += alpha * s
			}
		}
	}
}
