package tensor

import (
	"runtime"
	"sync"
)

// parallelThreshold is the number of multiply-accumulate operations below
// which GEMM and SpMM kernels run single-threaded; handing work to the pool
// costs more than it saves on tiny matrices.
const parallelThreshold = 1 << 16

// poolTask is one contiguous row chunk of one kernel call.
type poolTask struct {
	fn     func(r0, r1 int)
	r0, r1 int
	wg     *sync.WaitGroup
}

// workerPool is the persistent, package-level kernel worker pool shared by
// the dense GEMM and (via format.parallelRows) the sparse SpMM plans. It is
// started lazily on the first call large enough to fan out; the
// steady-state predict path spawns no goroutines. Worker count is fixed at
// GOMAXPROCS observed at start; tasks are leaf computations that never
// submit further tasks, so concurrent kernel calls can share the one queue
// without deadlock.
var workerPool struct {
	once    sync.Once
	workers int
	tasks   chan poolTask
}

func startWorkerPool() {
	workerPool.workers = runtime.GOMAXPROCS(0)
	workerPool.tasks = make(chan poolTask, 4*workerPool.workers)
	for i := 0; i < workerPool.workers; i++ {
		go func() {
			for t := range workerPool.tasks {
				t.fn(t.r0, t.r1)
				t.wg.Done()
			}
		}()
	}
}

// ParallelRows splits [0, rows) into contiguous chunks across the
// persistent worker pool when work (a multiply-accumulate count) is large
// enough to amortize the handoff; smaller problems run inline on the
// caller. Each row chunk is processed by exactly one worker, so kernels
// that give every output row a single writer stay bit-identical to their
// sequential loops. The submitting goroutine executes the last chunk
// itself: a fan-out over w chunks costs w-1 queue handoffs and no
// goroutine startup.
//
// Callers on an allocation-sensitive path should test the threshold
// themselves and call their row kernel directly when under it — a closure
// passed here escapes (it enters the task queue) and costs one heap
// allocation per call.
func ParallelRows(rows, work int, fn func(r0, r1 int)) {
	if work < parallelThreshold || rows < 2 {
		fn(0, rows)
		return
	}
	workerPool.once.Do(startWorkerPool)
	workers := workerPool.workers
	if workers > rows {
		workers = rows
	}
	if workers == 1 {
		fn(0, rows)
		return
	}
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	last := 0
	for r0 := 0; r0+chunk < rows; r0 += chunk {
		wg.Add(1)
		workerPool.tasks <- poolTask{fn: fn, r0: r0, r1: r0 + chunk, wg: &wg}
		last = r0 + chunk
	}
	fn(last, rows) // the caller's own share
	wg.Wait()
}
