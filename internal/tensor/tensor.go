// Package tensor provides dense float64 tensors with the small set of
// operations the CRISP reproduction needs: elementwise arithmetic, reductions,
// a parallel GEMM, and the im2col/col2im transforms used to lower
// convolutions onto GEMM. Tensors are row-major and contiguous; reshapes are
// zero-copy views.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense, row-major, contiguous float64 tensor.
type Tensor struct {
	// Shape holds the extent of every dimension, outermost first.
	Shape []int
	// Data holds the elements in row-major order; len(Data) == product(Shape).
	Data []float64
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := prod(shape)
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must match the shape volume.
func FromSlice(data []float64, shape ...int) *Tensor {
	if len(data) != prod(shape) {
		panic(fmt.Sprintf("tensor: FromSlice length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Full returns a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Randn fills a new tensor with N(0, std²) samples drawn from rng.
func Randn(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
	return t
}

// Uniform fills a new tensor with U(lo, hi) samples drawn from rng.
func Uniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the extent of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Reshape returns a view sharing Data with a new shape of equal volume.
// One dimension may be -1, in which case it is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	known := 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: Reshape with more than one -1 dimension")
			}
			infer = i
		} else {
			known *= d
		}
	}
	if infer >= 0 {
		if known == 0 || len(t.Data)%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension for reshape of %d elements to %v", len(t.Data), shape))
		}
		shape[infer] = len(t.Data) / known
		known *= shape[infer]
	}
	if known != len(t.Data) {
		panic(fmt.Sprintf("tensor: reshape volume mismatch: %d elements to shape %v", len(t.Data), shape))
	}
	return &Tensor{Shape: shape, Data: t.Data}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx)] }

// Set assigns v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Zero sets every element to 0 in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v in place.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// AddInPlace adds o elementwise into t. Shapes must have equal volume.
func (t *Tensor) AddInPlace(o *Tensor) {
	checkSameLen(t, o, "AddInPlace")
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// SubInPlace subtracts o elementwise from t.
func (t *Tensor) SubInPlace(o *Tensor) {
	checkSameLen(t, o, "SubInPlace")
	for i, v := range o.Data {
		t.Data[i] -= v
	}
}

// MulInPlace multiplies t elementwise by o (Hadamard product).
func (t *Tensor) MulInPlace(o *Tensor) {
	checkSameLen(t, o, "MulInPlace")
	for i, v := range o.Data {
		t.Data[i] *= v
	}
}

// ScaleInPlace multiplies every element by s.
func (t *Tensor) ScaleInPlace(s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AddScaledInPlace performs t += s*o elementwise.
func (t *Tensor) AddScaledInPlace(s float64, o *Tensor) {
	checkSameLen(t, o, "AddScaledInPlace")
	for i, v := range o.Data {
		t.Data[i] += s * v
	}
}

// Mul returns the elementwise product of a and b as a new tensor.
func Mul(a, b *Tensor) *Tensor {
	checkSameLen(a, b, "Mul")
	c := New(a.Shape...)
	for i := range c.Data {
		c.Data[i] = a.Data[i] * b.Data[i]
	}
	return c
}

// Add returns the elementwise sum of a and b as a new tensor.
func Add(a, b *Tensor) *Tensor {
	checkSameLen(a, b, "Add")
	c := New(a.Shape...)
	for i := range c.Data {
		c.Data[i] = a.Data[i] + b.Data[i]
	}
	return c
}

// Concat concatenates tensors along dimension 0. All inputs must share the
// trailing dimensions; the result's leading dimension is the sum of the
// inputs'. It is the batching primitive: B single-sample [1,C,H,W] tensors
// become one [B,C,H,W] batch that a single forward pass (one GEMM per
// layer) can serve.
func Concat(ts []*Tensor) *Tensor {
	return ConcatInto(ts, New(concatShape(ts)...))
}

// ConcatInto concatenates tensors along dimension 0 into dst, which must
// have the concatenated shape; every element of dst is overwritten, so dst
// may be an uninitialized scratch buffer. Returns dst.
func ConcatInto(ts []*Tensor, dst *Tensor) *Tensor {
	shape := concatShape(ts)
	if len(dst.Shape) != len(shape) {
		panic(fmt.Sprintf("tensor: ConcatInto dst rank %v, want %v", dst.Shape, shape))
	}
	for i, d := range shape {
		if dst.Shape[i] != d {
			panic(fmt.Sprintf("tensor: ConcatInto dst shape %v, want %v", dst.Shape, shape))
		}
	}
	off := 0
	for _, t := range ts {
		copy(dst.Data[off:], t.Data)
		off += len(t.Data)
	}
	return dst
}

// concatShape validates the inputs of a concat and returns the result shape.
func concatShape(ts []*Tensor) []int {
	if len(ts) == 0 {
		panic("tensor: Concat of zero tensors")
	}
	first := ts[0]
	rest := first.Shape[1:]
	lead := 0
	for _, t := range ts {
		if len(t.Shape) != len(first.Shape) {
			panic(fmt.Sprintf("tensor: Concat rank mismatch: %v vs %v", t.Shape, first.Shape))
		}
		for i, d := range t.Shape[1:] {
			if d != rest[i] {
				panic(fmt.Sprintf("tensor: Concat trailing-shape mismatch: %v vs %v", t.Shape, first.Shape))
			}
		}
		lead += t.Shape[0]
	}
	return append([]int{lead}, rest...)
}

// CacheBlockF64 is THE cache-block edge for float64 tiling in this repo:
// the square tile side (in elements) below which two tiles — one read, one
// written — fit in a 16 KiB half-L1 budget (2·32²·8 B = 16 KiB). The
// cache-blocked transpose uses it directly, and the sparse blocked-kernel
// tile partitioner (internal/format) derives its default row/column tiles
// from it, so both sides of every SpMM (transposed weights in, tiled
// output out) block at the same granularity. The value is pinned to the
// hardware model's derivation — accel.CPUHW().CacheBlockF64() — and a test
// in internal/accel asserts they agree (tensor cannot import accel: accel
// depends on this package through internal/sparsity).
const CacheBlockF64 = 32

// Transpose returns mᵀ for a rank-2 tensor.
func Transpose(m *Tensor) *Tensor {
	if len(m.Shape) != 2 {
		panic(fmt.Sprintf("tensor: Transpose requires rank-2, got %v", m.Shape))
	}
	return TransposeInto(m, New(m.Shape[1], m.Shape[0]))
}

// TransposeInto writes mᵀ into dst, which must be rank-2 with the
// transposed shape; every element of dst is overwritten, so dst may be an
// uninitialized scratch buffer. The copy is cache-blocked: walking the
// source row-major would stride the destination by its full row length, so
// both sides are visited in square tiles instead. Returns dst.
func TransposeInto(m, dst *Tensor) *Tensor {
	if len(m.Shape) != 2 {
		panic(fmt.Sprintf("tensor: TransposeInto requires rank-2, got %v", m.Shape))
	}
	r, c := m.Shape[0], m.Shape[1]
	if len(dst.Shape) != 2 || dst.Shape[0] != c || dst.Shape[1] != r {
		panic(fmt.Sprintf("tensor: TransposeInto dst %v, want [%d %d]", dst.Shape, c, r))
	}
	for i0 := 0; i0 < r; i0 += CacheBlockF64 {
		i1 := i0 + CacheBlockF64
		if i1 > r {
			i1 = r
		}
		for j0 := 0; j0 < c; j0 += CacheBlockF64 {
			j1 := j0 + CacheBlockF64
			if j1 > c {
				j1 = c
			}
			for i := i0; i < i1; i++ {
				src := m.Data[i*c+j0 : i*c+j1]
				for j, v := range src {
					dst.Data[(j0+j)*r+i] = v
				}
			}
		}
	}
	return dst
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// AbsSum returns the sum of absolute values (L1 norm).
func (t *Tensor) AbsSum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += math.Abs(v)
	}
	return s
}

// Norm2 returns the Euclidean (L2) norm.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value (0 for empty tensors).
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// ArgMax returns the index of the largest element in the flat data.
func (t *Tensor) ArgMax() int {
	best, bi := math.Inf(-1), 0
	for i, v := range t.Data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// CountNonZero returns the number of elements that are not exactly zero.
func (t *Tensor) CountNonZero() int {
	n := 0
	for _, v := range t.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Equal reports whether a and b have identical shape and elementwise values
// within tolerance tol.
func Equal(a, b *Tensor, tol float64) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func checkSameLen(a, b *Tensor, op string) {
	if len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("tensor: %s volume mismatch: %v vs %v", op, a.Shape, b.Shape))
	}
}

func prod(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}
