package tensor

import "fmt"

// ConvGeom describes the spatial geometry of a 2-D convolution.
type ConvGeom struct {
	InC, InH, InW int // input channels and spatial extent
	KH, KW        int // kernel height and width
	Stride        int // common stride for both axes
	Pad           int // symmetric zero padding
}

// OutH returns the output height.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.KH)/g.Stride + 1 }

// OutW returns the output width.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.KW)/g.Stride + 1 }

// Validate reports a descriptive error when the geometry is degenerate.
func (g ConvGeom) Validate() error {
	if g.InC <= 0 || g.InH <= 0 || g.InW <= 0 || g.KH <= 0 || g.KW <= 0 {
		return fmt.Errorf("tensor: non-positive conv geometry %+v", g)
	}
	if g.Stride <= 0 {
		return fmt.Errorf("tensor: non-positive stride in %+v", g)
	}
	if g.Pad < 0 {
		return fmt.Errorf("tensor: negative padding in %+v", g)
	}
	if g.OutH() <= 0 || g.OutW() <= 0 {
		return fmt.Errorf("tensor: kernel larger than padded input in %+v", g)
	}
	return nil
}

// Im2Col lowers a batched image tensor x with shape [N, C, H, W] into a
// matrix of shape [C*KH*KW, N*OutH*OutW] so that convolution becomes a
// GEMM with the weight matrix reshaped to [OutC, C*KH*KW]. Out-of-bounds
// (padding) taps contribute zeros.
func Im2Col(x *Tensor, g ConvGeom) *Tensor {
	n := x.Shape[0]
	return Im2ColInto(x, g, New(g.InC*g.KH*g.KW, n*g.OutH()*g.OutW()))
}

// Im2ColInto is Im2Col writing into dst, which must have shape
// [C*KH*KW, N*OutH*OutW]. Every element of dst is written — padding taps
// store explicit zeros — so dst may be an uninitialized scratch buffer.
// Returns dst.
func Im2ColInto(x *Tensor, g ConvGeom, dst *Tensor) *Tensor {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("tensor: Im2Col requires [N,C,H,W] input, got %v", x.Shape))
	}
	n := x.Shape[0]
	if x.Shape[1] != g.InC || x.Shape[2] != g.InH || x.Shape[3] != g.InW {
		panic(fmt.Sprintf("tensor: Im2Col input %v does not match geometry %+v", x.Shape, g))
	}
	oh, ow := g.OutH(), g.OutW()
	rows := g.InC * g.KH * g.KW
	cols := n * oh * ow
	if len(dst.Shape) != 2 || dst.Shape[0] != rows || dst.Shape[1] != cols {
		panic(fmt.Sprintf("tensor: Im2ColInto dst %v, want [%d %d]", dst.Shape, rows, cols))
	}

	// Row index r encodes (c, kh, kw); column index encodes (n, oy, ox).
	for c := 0; c < g.InC; c++ {
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				r := (c*g.KH+kh)*g.KW + kw
				d := dst.Data[r*cols : (r+1)*cols]
				// ox ∈ [ox0, ox1) are the taps with in-bounds ix; the rest
				// of the output row is explicit padding zeros.
				ox0 := 0
				if g.Pad > kw {
					ox0 = (g.Pad - kw + g.Stride - 1) / g.Stride
				}
				ox1 := (g.InW + g.Pad - kw + g.Stride - 1) / g.Stride
				if ox1 > ow {
					ox1 = ow
				}
				if ox1 < 0 {
					ox1 = 0
				}
				if ox0 > ox1 {
					ox0 = ox1
				}
				for b := 0; b < n; b++ {
					src := x.Data[(b*g.InC+c)*g.InH*g.InW : (b*g.InC+c+1)*g.InH*g.InW]
					for oy := 0; oy < oh; oy++ {
						iy := oy*g.Stride + kh - g.Pad
						base := (b*oh + oy) * ow
						row := d[base : base+ow]
						if iy < 0 || iy >= g.InH {
							clear(row)
							continue
						}
						rowSrc := src[iy*g.InW : (iy+1)*g.InW]
						clear(row[:ox0])
						if g.Stride == 1 {
							// Stride-1 taps read consecutive input pixels, so
							// the whole tap row is one contiguous copy — the
							// common case (3×3 stride-1 convs), and the copy
							// is what feeds the SpMM kernels their activation
							// panels, so it runs at memmove speed instead of
							// one element per iteration.
							copy(row[ox0:ox1], rowSrc[ox0+kw-g.Pad:])
						} else {
							for ox := ox0; ox < ox1; ox++ {
								row[ox] = rowSrc[ox*g.Stride+kw-g.Pad]
							}
						}
						clear(row[ox1:])
					}
				}
			}
		}
	}
	return dst
}

// Col2Im is the adjoint of Im2Col: it scatters (accumulating) a matrix of
// shape [C*KH*KW, N*OutH*OutW] back into an image tensor [N, C, H, W].
// It is used to backpropagate gradients through the im2col lowering.
func Col2Im(cols *Tensor, n int, g ConvGeom) *Tensor {
	oh, ow := g.OutH(), g.OutW()
	rows := g.InC * g.KH * g.KW
	ncols := n * oh * ow
	if len(cols.Shape) != 2 || cols.Shape[0] != rows || cols.Shape[1] != ncols {
		panic(fmt.Sprintf("tensor: Col2Im input %v does not match geometry %+v with batch %d", cols.Shape, g, n))
	}
	x := New(n, g.InC, g.InH, g.InW)
	for c := 0; c < g.InC; c++ {
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				r := (c*g.KH+kh)*g.KW + kw
				src := cols.Data[r*ncols : (r+1)*ncols]
				for b := 0; b < n; b++ {
					dst := x.Data[(b*g.InC+c)*g.InH*g.InW : (b*g.InC+c+1)*g.InH*g.InW]
					for oy := 0; oy < oh; oy++ {
						iy := oy*g.Stride + kh - g.Pad
						if iy < 0 || iy >= g.InH {
							continue
						}
						base := (b*oh + oy) * ow
						for ox := 0; ox < ow; ox++ {
							ix := ox*g.Stride + kw - g.Pad
							if ix < 0 || ix >= g.InW {
								continue
							}
							dst[iy*g.InW+ix] += src[base+ox]
						}
					}
				}
			}
		}
	}
	return x
}
