package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndShape(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	if x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad dims: %v", x.Shape)
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4, 5)
	x.Set(7.5, 2, 1, 3)
	if got := x.At(2, 1, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	// Row-major offset check: (2*4+1)*5+3 = 48.
	if x.Data[48] != 7.5 {
		t.Fatalf("row-major layout broken: Data[48]=%v", x.Data[48])
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestConcat(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 1, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8, 9, 10, 11, 12}, 2, 2, 2)
	c := Concat([]*Tensor{a, b})
	if c.Shape[0] != 3 || c.Shape[1] != 2 || c.Shape[2] != 2 {
		t.Fatalf("shape %v, want [3 2 2]", c.Shape)
	}
	for i := 0; i < 12; i++ {
		if c.Data[i] != float64(i+1) {
			t.Fatalf("Data[%d]=%v", i, c.Data[i])
		}
	}
}

func TestConcatPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for trailing-shape mismatch")
		}
	}()
	Concat([]*Tensor{New(1, 2, 2), New(1, 2, 3)})
}

func TestReshapeView(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Data[5] = 9
	if x.Data[5] != 9 {
		t.Fatal("Reshape must share storage")
	}
	z := x.Reshape(4, -1)
	if z.Shape[1] != 3 {
		t.Fatalf("inferred dim = %d, want 3", z.Shape[1])
	}
}

func TestReshapePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad reshape")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{10, 20, 30, 40}, 2, 2)
	sum := Add(a, b)
	want := []float64{11, 22, 33, 44}
	for i := range want {
		if sum.Data[i] != want[i] {
			t.Fatalf("Add[%d] = %v, want %v", i, sum.Data[i], want[i])
		}
	}
	prod := Mul(a, b)
	wantP := []float64{10, 40, 90, 160}
	for i := range wantP {
		if prod.Data[i] != wantP[i] {
			t.Fatalf("Mul[%d] = %v, want %v", i, prod.Data[i], wantP[i])
		}
	}
	a.AddScaledInPlace(0.5, b)
	if a.Data[3] != 4+20 {
		t.Fatalf("AddScaledInPlace: got %v", a.Data[3])
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{-3, 1, 2}, 3)
	if x.Sum() != 0 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.AbsSum() != 6 {
		t.Fatalf("AbsSum = %v", x.AbsSum())
	}
	if x.MaxAbs() != 3 {
		t.Fatalf("MaxAbs = %v", x.MaxAbs())
	}
	if x.ArgMax() != 2 {
		t.Fatalf("ArgMax = %v", x.ArgMax())
	}
	if x.CountNonZero() != 3 {
		t.Fatalf("CountNonZero = %v", x.CountNonZero())
	}
	if math.Abs(x.Norm2()-math.Sqrt(14)) > 1e-12 {
		t.Fatalf("Norm2 = %v", x.Norm2())
	}
}

// naiveGemm is the O(mnk) reference implementation used to validate Gemm.
func naiveGemm(transA, transB bool, m, n, k int, alpha float64, a, b []float64, beta float64, c []float64) {
	get := func(buf []float64, trans bool, rows, cols, i, j int) float64 {
		if trans {
			return buf[j*rows+i]
		}
		return buf[i*cols+j]
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for l := 0; l < k; l++ {
				s += get(a, transA, m, k, i, l) * get(b, transB, k, n, l, j)
			}
			c[i*n+j] = beta*c[i*n+j] + alpha*s
		}
	}
}

func TestGemmAllTransposeCombos(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range []int{1, 3, 7} {
		for _, n := range []int{1, 4, 9} {
			for _, k := range []int{1, 5, 8} {
				for _, ta := range []bool{false, true} {
					for _, tb := range []bool{false, true} {
						a := make([]float64, m*k)
						b := make([]float64, k*n)
						for i := range a {
							a[i] = rng.NormFloat64()
						}
						for i := range b {
							b[i] = rng.NormFloat64()
						}
						got := make([]float64, m*n)
						want := make([]float64, m*n)
						for i := range got {
							got[i] = rng.NormFloat64()
							want[i] = got[i]
						}
						Gemm(ta, tb, m, n, k, 1.25, a, b, 0.5, got)
						naiveGemm(ta, tb, m, n, k, 1.25, a, b, 0.5, want)
						for i := range got {
							if math.Abs(got[i]-want[i]) > 1e-9 {
								t.Fatalf("Gemm(%v,%v,m=%d,n=%d,k=%d)[%d] = %v, want %v",
									ta, tb, m, n, k, i, got[i], want[i])
							}
						}
					}
				}
			}
		}
	}
}

func TestGemmParallelMatchesSerial(t *testing.T) {
	// Large enough to trigger the parallel path.
	m, n, k := 64, 64, 64
	rng := rand.New(rand.NewSource(2))
	a := make([]float64, m*k)
	b := make([]float64, k*n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	got := make([]float64, m*n)
	want := make([]float64, m*n)
	Gemm(false, false, m, n, k, 1, a, b, 0, got)
	naiveGemm(false, false, m, n, k, 1, a, b, 0, want)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("parallel Gemm[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	n := 5
	id := New(n, n)
	for i := 0; i < n; i++ {
		id.Set(1, i, i)
	}
	rng := rand.New(rand.NewSource(3))
	a := Randn(rng, 1, n, n)
	c := MatMul(a, id)
	if !Equal(a, c, 1e-12) {
		t.Fatal("A·I != A")
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched inner dims")
		}
	}()
	MatMul(New(2, 3), New(4, 5))
}

func TestIm2ColKnownValues(t *testing.T) {
	// 1×1×3×3 input, 2×2 kernel, stride 1, no padding → 4 output positions.
	x := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	g := ConvGeom{InC: 1, InH: 3, InW: 3, KH: 2, KW: 2, Stride: 1, Pad: 0}
	cols := Im2Col(x, g)
	if cols.Shape[0] != 4 || cols.Shape[1] != 4 {
		t.Fatalf("cols shape = %v", cols.Shape)
	}
	// Row 0 is kernel tap (0,0): the top-left value of each patch.
	wantRow0 := []float64{1, 2, 4, 5}
	for j, w := range wantRow0 {
		if cols.At(0, j) != w {
			t.Fatalf("cols[0][%d] = %v, want %v", j, cols.At(0, j), w)
		}
	}
	// Row 3 is kernel tap (1,1): bottom-right of each patch.
	wantRow3 := []float64{5, 6, 8, 9}
	for j, w := range wantRow3 {
		if cols.At(3, j) != w {
			t.Fatalf("cols[3][%d] = %v, want %v", j, cols.At(3, j), w)
		}
	}
}

func TestIm2ColPadding(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	g := ConvGeom{InC: 1, InH: 2, InW: 2, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if g.OutH() != 2 || g.OutW() != 2 {
		t.Fatalf("out dims %dx%d", g.OutH(), g.OutW())
	}
	cols := Im2Col(x, g)
	// Kernel tap (0,0) for output (0,0) reads input (-1,-1) → 0.
	if cols.At(0, 0) != 0 {
		t.Fatalf("padding tap = %v, want 0", cols.At(0, 0))
	}
	// Kernel center (1,1) for output (0,0) reads input (0,0) = 1.
	if cols.At(4, 0) != 1 {
		t.Fatalf("center tap = %v, want 1", cols.At(4, 0))
	}
}

func TestConvGeomValidate(t *testing.T) {
	good := ConvGeom{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	bad := []ConvGeom{
		{InC: 0, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1},
		{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 0},
		{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: -1},
		{InC: 3, InH: 2, InW: 2, KH: 5, KW: 5, Stride: 1, Pad: 0},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Fatalf("bad geometry %d accepted: %+v", i, g)
		}
	}
}

// TestCol2ImAdjoint verifies the defining adjoint property
// <Im2Col(x), y> == <x, Col2Im(y)> for random x, y, which is exactly the
// identity backprop relies on.
func TestCol2ImAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := ConvGeom{InC: 2, InH: 5, InW: 4, KH: 3, KW: 2, Stride: 2, Pad: 1}
	n := 3
	x := Randn(rng, 1, n, g.InC, g.InH, g.InW)
	cols := Im2Col(x, g)
	y := Randn(rng, 1, cols.Shape[0], cols.Shape[1])
	lhs := 0.0
	for i := range cols.Data {
		lhs += cols.Data[i] * y.Data[i]
	}
	back := Col2Im(y, n, g)
	rhs := 0.0
	for i := range x.Data {
		rhs += x.Data[i] * back.Data[i]
	}
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}

// Property: Reshape never changes the data contents.
func TestReshapePreservesDataProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		x := FromSlice(append([]float64(nil), vals...), len(vals))
		y := x.Reshape(1, -1).Reshape(-1)
		for i := range vals {
			if y.Data[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is commutative and Mul distributes sign.
func TestAddCommutativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Randn(rng, 1, 4, 4)
		b := Randn(rng, 1, 4, 4)
		return Equal(Add(a, b), Add(b, a), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: GEMM is linear in alpha.
func TestGemmAlphaLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n, k := 3, 4, 5
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		c1 := make([]float64, m*n)
		c2 := make([]float64, m*n)
		Gemm(false, false, m, n, k, 2.0, a.Data, b.Data, 0, c1)
		Gemm(false, false, m, n, k, 1.0, a.Data, b.Data, 0, c2)
		for i := range c1 {
			if math.Abs(c1[i]-2*c2[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
