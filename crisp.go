// Package crisp is the public facade of this reproduction of "CRISP:
// Hybrid Structured Sparsity for Class-aware Model Pruning" (DATE 2024).
//
// The library prunes a classifier down to the classes a specific user
// encounters, using the paper's hybrid pattern: fine-grained N:M sparsity
// composed with coarse-grained, per-row-balanced block sparsity, driven by
// a gradient-based class-aware saliency score and an iterative
// prune→fine-tune loop.
//
// Quick start:
//
//	ds := crisp.NewDataset(crisp.SynthImageNet())
//	model := crisp.NewModel(crisp.ResNet, ds.NumClasses, 2, 1)
//	// ... pre-train or load weights, then personalize:
//	result := crisp.Personalize(model, ds, []int{3, 17, 42}, crisp.DefaultConfig(0.9))
//	fmt.Println(result.Report, result.Accuracy)
//
// To serve many users concurrently, wrap the pretrained model in the
// personalization server instead of pruning one-shot: engines are built on
// a bounded worker pool, cached per class set with LRU eviction, and run
// batched sparse inference (cmd/crisp-serve exposes the same thing over
// HTTP):
//
//	srv, err := crisp.NewServer(model, crisp.ResNet, 2, 1, ds, crisp.ServerConfig{})
//	p, cached, err := srv.Personalize([]int{3, 17, 42})
//	preds, err := srv.Predict([]int{3, 17, 42}, batch) // batch: [B,C,H,W]
//
// Concurrent Predict calls against the same personalization coalesce into
// shared engine invocations (cross-request dynamic batching; tune with
// ServerConfig.MaxBatch/Linger/MaxQueue) with results bit-identical to
// running each request alone; when a personalization's queue is full the
// server sheds load with ErrOverloaded instead of queueing without bound.
//
// Set ServerConfig.SnapshotDir to make the server durable: completed
// personalizations are snapshotted to disk write-behind, evicted engines
// keep their disk copy, and NewServer warm-restarts from the directory —
// previously personalized class sets reload with bit-identical engines
// instead of re-running the prune+fine-tune pipeline.
//
// Set ServerConfig.MemoryBudgetBytes to cap resident tenant state: the
// engine cache becomes a three-tier hierarchy (hot compiled engines →
// warm delta-encoded records → cold disk snapshots) that stores every
// tenant as a delta over the shared universal weights instead of a full
// model copy. Demoted tenants promote back bit-identically on their next
// request; see examples/tiered and internal/serve's "Memory tiers"
// section. Budget 0 (the default) keeps the single-level count LRU.
//
// Set ServerConfig.Precision to PrecisionInt8 to serve from int8 quantized
// plans (the deployment precision of CRISP-STC's sparse tensor cores):
// weights compile to int8 codes with per-row scales, activations quantize
// per column on the fly, products accumulate in int32 and dequantize on
// store. Results are approximate; every personalization measures its top-1
// agreement against the full-precision engine on its held-out split
// (Personalization.Agreement, aggregated in Stats), and snapshot restore
// re-quantizes deterministically — the restored engine carries exactly the
// pre-restart codes.
//
// The heavy lifting lives in the internal packages (tensor, nn, sparsity,
// saliency, pruner, format, accel, energy, data, models, exp, serve); this
// package re-exports the workflow a downstream user needs.
package crisp

import (
	"io"
	"math/rand"

	"repro/internal/checkpoint"
	"repro/internal/data"
	"repro/internal/export"
	"repro/internal/inference"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/pruner"
	"repro/internal/serve"
	"repro/internal/sparsity"
)

// Model families mirroring the paper's three networks, plus the vision
// transformer of the future-work extension.
const (
	ResNet            = models.ResNet
	VGG               = models.VGG
	MobileNet         = models.MobileNet
	TransformerFamily = models.Transformer
)

// NM re-exports the N:M pattern descriptor.
type NM = sparsity.NM

// Config re-exports the pruning options.
type Config = pruner.Options

// Report re-exports the pruning report.
type Report = pruner.Report

// Dataset re-exports the synthetic dataset type.
type Dataset = data.Dataset

// Classifier re-exports the trainable model wrapper.
type Classifier = nn.Classifier

// SynthImageNet returns the ImageNet-scale synthetic dataset configuration.
func SynthImageNet() data.Config { return data.SynthImageNet() }

// SynthCIFAR returns the CIFAR-scale synthetic dataset configuration.
func SynthCIFAR() data.Config { return data.SynthCIFAR() }

// NewDataset materializes a synthetic dataset.
func NewDataset(cfg data.Config) *Dataset { return data.New(cfg) }

// NewModel builds a trainable classifier of the given family and width.
func NewModel(f models.Family, numClasses, width int, seed int64) *Classifier {
	return models.Build(f, rand.New(rand.NewSource(seed)), numClasses, width)
}

// DefaultConfig returns the paper-default pruning configuration for a
// global sparsity target: 2:4 fine-grained sparsity, iterative schedule,
// SGD with momentum 0.9 and weight decay 4e-5.
func DefaultConfig(target float64) Config {
	return Config{
		Target: target,
		NM:     NM{N: 2, M: 4},
	}
}

// Pretrain trains the model on all classes of ds — the "universal model"
// the paper starts from.
func Pretrain(model *Classifier, ds *Dataset, epochs, samplesPerClass int, seed int64) {
	all := make([]int, ds.NumClasses)
	for i := range all {
		all[i] = i
	}
	split := ds.MakeSplit("pretrain", all, samplesPerClass)
	opt := nn.NewSGD(0.05, 0.9, 4e-5)
	pruner.Finetune(model, split, epochs, 16, opt, rand.New(rand.NewSource(seed)))
}

// Result bundles the outcome of Personalize.
type Result struct {
	// Report is the pruning run summary (achieved sparsity, FLOPs ratio,
	// per-layer stats, per-iteration trace).
	Report Report
	// Accuracy is top-1 accuracy on held-out samples of the user classes.
	Accuracy float64
	// Classes echoes the personalization target.
	Classes []int
}

// Personalize runs the CRISP framework: starting from the given (ideally
// pre-trained) model, it iteratively prunes toward cfg.Target using
// samples of the user's classes and returns the pruned model's report and
// held-out accuracy. The model is mutated in place.
func Personalize(model *Classifier, ds *Dataset, userClasses []int, cfg Config) Result {
	train := ds.MakeSplit("user-train", userClasses, 32)
	test := ds.MakeSplit("user-test", userClasses, 16)
	rep := pruner.NewCRISP(cfg).Prune(model, train)
	return Result{
		Report:   rep,
		Accuracy: model.Accuracy(test.X, test.Labels),
		Classes:  userClasses,
	}
}

// SaveCheckpoint writes the model's weights, pruning masks and
// normalization statistics to w in the versioned binary format.
func SaveCheckpoint(w io.Writer, model *Classifier) error {
	return checkpoint.Save(w, model)
}

// LoadCheckpoint restores a checkpoint written by SaveCheckpoint into an
// architecturally identical model.
func LoadCheckpoint(r io.Reader, model *Classifier) error {
	return checkpoint.Load(r, model)
}

// Deployment summarizes a pruned model's deployable artifacts.
type Deployment struct {
	// DenseBytes and CRISPBytes are deployed sizes at 8-bit weights.
	DenseBytes, CRISPBytes int64
	// Compression is DenseBytes / CRISPBytes.
	Compression float64
	// Engine executes inference from the compressed representation; its
	// outputs are bit-identical to the masked dense model.
	Engine *inference.Engine
}

// Server re-exports the concurrent personalization service: per-class-set
// pruned engines built on a bounded worker pool, cached with LRU eviction
// and singleflight dedup of identical in-flight requests (see
// internal/serve for the cache semantics and HTTP surface).
type Server = serve.Server

// ServerConfig re-exports the serving options, including the dynamic
// batching knobs: MaxBatch coalesces concurrent Predict calls against one
// personalization into shared engine invocations (1 disables), Linger
// bounds how long a lone request waits for batch mates, and MaxQueue is
// the admission-control bound — a full queue rejects with ErrOverloaded
// instead of queueing without bound.
//
// MemoryBudgetBytes bounds resident tenant state in bytes and switches
// the cache to the tiered hot/warm/cold hierarchy (HotFraction splits the
// budget between compiled engines and delta records); 0 keeps the
// single-level LRU of CacheSize engines.
type ServerConfig = serve.Options

// ErrOverloaded re-exports the admission-control rejection: the
// personalization's predict queue is full and the request was dropped.
// Callers should back off and retry (cmd/crisp-serve maps it to HTTP 429).
var ErrOverloaded = serve.ErrOverloaded

// ErrOverQuota re-exports the weighted-shedding rejection: the tenant
// exceeded its QoS class's rate quota while the server was under queue
// pressure (also HTTP 429, but targeted at the over-quota tenant — other
// tenants keep being served).
var ErrOverQuota = serve.ErrOverQuota

// QoSClass re-exports a tenant's service class for ServerConfig.QoS and
// Server.PersonalizeQoS; QoSOptions re-exports the load-shaping knobs
// (per-class QoSPolicy overrides, shed watermark, or Disabled for plain
// FIFO batching).
type (
	QoSClass   = serve.QoSClass
	QoSOptions = serve.QoSOptions
	QoSPolicy  = serve.QoSPolicy
)

// QoS classes: gold gets the tightest latency budget and fattest quota,
// batch the loosest of both; standard (the zero value) is the default
// interactive tier.
const (
	QoSGold     = serve.QoSGold
	QoSStandard = serve.QoSStandard
	QoSBatch    = serve.QoSBatch
)

// Precision re-exports the engine execution precision for
// ServerConfig.Precision.
type Precision = inference.Precision

// Precision modes: the full-precision reference (default) and int8
// quantized execution (int8 weight codes and activations, int32
// accumulate — the sparse-tensor-core deployment precision; approximate,
// with the accuracy cost measured per personalization as
// Personalization.Agreement).
const (
	PrecisionFloat32 = inference.Float32
	PrecisionInt8    = inference.Int8
)

// Personalization re-exports one cached tenant model.
type Personalization = serve.Personalization

// NewServer wraps a pretrained universal model in the personalization
// service. f, width and seed must match the arguments model was built with
// (NewModel), so the server can clone architecturally identical instances
// to prune per request; model itself is never mutated. Invalid pruning
// options in cfg are reported as an error.
//
// When cfg.SnapshotDir is set, NewServer warm-restarts: every
// personalization snapshotted by a previous server on that directory is
// restored from disk before the server is returned (corrupt records are
// skipped and counted in Stats().RestoreErrors). Use serve.NewServer
// directly to defer or skip the restore.
func NewServer(model *Classifier, f models.Family, width int, seed int64, ds *Dataset, cfg ServerConfig) (*Server, error) {
	build := func() *Classifier {
		return models.Build(f, rand.New(rand.NewSource(seed)), ds.NumClasses, width)
	}
	s, err := serve.NewServer(build, model, ds, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.SnapshotDir != "" {
		if _, err := s.Restore(); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// Deploy compresses the pruned model into the CRISP storage format and
// builds the sparse inference engine over it.
func Deploy(model *Classifier, cfg Config) (Deployment, error) {
	// Validate first: WithDefaults panics on invalid configurations
	// (programmer error inside the pruners), but Deploy reports errors.
	if err := cfg.Validate(); err != nil {
		return Deployment{}, err
	}
	cfg = cfg.WithDefaults()
	sizes, err := export.Sizes(model, cfg.BlockSize, cfg.NM, 8)
	if err != nil {
		return Deployment{}, err
	}
	eng, err := inference.New(model, cfg.BlockSize, cfg.NM)
	if err != nil {
		return Deployment{}, err
	}
	return Deployment{
		DenseBytes:  sizes.DenseBytes,
		CRISPBytes:  sizes.FormatBytes["crisp"],
		Compression: sizes.CompressionRatio("crisp"),
		Engine:      eng,
	}, nil
}
